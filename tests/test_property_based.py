"""Property-based tests (hypothesis) on core data structures and invariants.

The sampler-kernel differential pack at the bottom runs with a pinned
``derandomize=True`` profile so the hypothesis-generated operation
streams are identical on every run -- CI failures reproduce locally
bit-for-bit, and the cross-backend comparisons never flake.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.ledger import Ledger
from repro.core.drep import SectorContentPlan
from repro.core.large_files import LargeFileCodec
from repro.core.selector import WeightedSampler
from repro.crypto.erasure import ReedSolomonCode
from repro.crypto.merkle import MerkleTree
from repro.crypto.prng import DeterministicPRNG
from repro.kernels import get_backend, sampler_stream
from repro.kernels.sampling import U32Randint, U32Stream

SETTINGS = settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None)

#: Differential-pack profile: derandomized (same examples every run, no
#: example database) so the CI tier-1 job is deterministic.
DIFF_SETTINGS = settings(
    max_examples=40,
    derandomize=True,
    database=None,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Merkle trees
# ----------------------------------------------------------------------
@SETTINGS
@given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=40))
def test_merkle_every_leaf_proof_verifies(leaves):
    tree = MerkleTree(leaves)
    for index in range(len(leaves)):
        assert tree.prove(index).verify(tree.root)


@SETTINGS
@given(
    st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=20),
    st.integers(min_value=0, max_value=19),
)
def test_merkle_root_sensitive_to_any_leaf_change(leaves, position):
    position = position % len(leaves)
    tree = MerkleTree(leaves)
    mutated = list(leaves)
    mutated[position] = mutated[position] + b"\x01"
    assert MerkleTree(mutated).root != tree.root


# ----------------------------------------------------------------------
# Reed-Solomon erasure code
# ----------------------------------------------------------------------
@SETTINGS
@given(
    data=st.binary(min_size=0, max_size=300),
    data_shards=st.integers(min_value=1, max_value=6),
    parity_shards=st.integers(min_value=0, max_value=6),
    drop_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_reed_solomon_recovers_from_any_sufficient_subset(
    data, data_shards, parity_shards, drop_seed
):
    code = ReedSolomonCode(data_shards, parity_shards)
    shards = code.encode(data)
    prng = DeterministicPRNG.from_int(drop_seed, domain="rs-drop")
    surviving = list(shards)
    prng.shuffle(surviving)
    surviving = surviving[:data_shards]
    assert code.decode(surviving) == data


# ----------------------------------------------------------------------
# Weighted sampler (Fenwick tree)
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_weighted_sampler_total_weight_matches_contents(operations):
    sampler = WeightedSampler()
    expected = {}
    for index, (weight, remove_later) in enumerate(operations):
        key = f"k{index}"
        sampler.add(key, weight)
        expected[key] = weight
        if remove_later and index % 2 == 0:
            sampler.remove(key)
            del expected[key]
    assert sampler.total_weight == sum(expected.values())
    assert len(sampler) == len(expected)
    if sampler.total_weight > 0:
        prng = DeterministicPRNG.from_int(1, domain="sampler-prop")
        for _ in range(10):
            key = sampler.sample(prng)
            assert expected.get(key, 0) > 0


# ----------------------------------------------------------------------
# Ledger conservation
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["mint", "transfer", "lock", "release", "confiscate", "burn"]),
            st.integers(min_value=1, max_value=1000),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_ledger_conservation_under_arbitrary_operation_sequences(operations):
    ledger = Ledger()
    accounts = [f"acct-{i}" for i in range(4)]
    for op, amount, a, b in operations:
        src, dst = accounts[a], accounts[b]
        ledger.ensure_account(src)
        ledger.ensure_account(dst)
        try:
            if op == "mint":
                ledger.mint(src, amount)
            elif op == "transfer":
                ledger.transfer(src, dst, amount)
            elif op == "lock":
                ledger.lock(src, amount)
            elif op == "release":
                ledger.release(src, amount)
            elif op == "confiscate":
                ledger.confiscate(src, amount, recipient=dst)
            elif op == "burn":
                ledger.burn(src, amount)
        except Exception:
            # Failed operations must not corrupt the books either.
            pass
        assert ledger.check_conservation()


# ----------------------------------------------------------------------
# DRep invariant
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=40), st.booleans()),
        min_size=1,
        max_size=30,
    )
)
def test_drep_unsealed_space_always_below_one_cr(file_operations):
    plan = SectorContentPlan(capacity=1000, capacity_replica_size=50)
    stored = []
    for index, (size, remove_one) in enumerate(file_operations):
        label = f"f{index}"
        if size <= plan.free_for_files():
            plan.add_file(label, size)
            stored.append(label)
        if remove_one and stored:
            plan.remove_file(stored.pop())
        assert plan.invariant_holds()
        assert plan.file_bytes() + plan.capacity_replica_bytes() + plan.unsealed_space() == 1000


# ----------------------------------------------------------------------
# PRNG ranges
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=0, max_value=200),
)
def test_prng_randint_always_within_bounds(seed, low, span):
    prng = DeterministicPRNG.from_int(seed, domain="prop-randint")
    high = low + span
    for _ in range(20):
        value = prng.randint(low, high)
        assert low <= value <= high


# ----------------------------------------------------------------------
# Large-file segmentation
# ----------------------------------------------------------------------
@SETTINGS
@given(
    data=st.binary(min_size=1, max_size=600),
    size_limit=st.integers(min_value=16, max_value=128),
    drop_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_large_file_survives_loss_of_half_the_segments(data, size_limit, drop_seed):
    codec = LargeFileCodec(size_limit=size_limit, k=10)
    segmented = codec.split(data, value=10)
    prng = DeterministicPRNG.from_int(drop_seed, domain="segment-drop")
    surviving = list(segmented.segments)
    prng.shuffle(surviving)
    # Keep exactly half the segments (the paper's survivability target).
    surviving = surviving[: segmented.total_segments // 2]
    assert codec.reassemble(segmented, surviving) == data


# ----------------------------------------------------------------------
# Sampler-kernel differential pack: reference vs vectorized, bit for bit
# ----------------------------------------------------------------------
@st.composite
def sampler_requests(draw):
    """A weight table plus an interleaved add/remove/reweight/draw stream.

    'add' and 'remove' are weight point-updates at the kernel level (a
    removed slot carries weight 0 and is never drawn), so the stream
    below exercises exactly the mutations ``CapacitySelector`` performs
    between draws, plus resample-on-full ``place`` operations when a
    free table is present.
    """
    n_slots = draw(st.integers(min_value=1, max_value=12))
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 40),
            min_size=n_slots,
            max_size=n_slots,
        )
    )
    with_free = draw(st.booleans())
    free = None
    if with_free:
        free = draw(
            st.lists(
                st.integers(min_value=0, max_value=512),
                min_size=n_slots,
                max_size=n_slots,
            )
        )
    kinds = ["set", "draw"] + (["place"] if with_free else [])
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=16))):
        kind = draw(st.sampled_from(kinds))
        if kind == "set":
            ops.append(
                (
                    "set",
                    draw(st.integers(min_value=0, max_value=n_slots - 1)),
                    draw(st.integers(min_value=0, max_value=1 << 40)),
                )
            )
        elif kind == "draw":
            ops.append(("draw", draw(st.integers(min_value=0, max_value=64))))
        else:
            ops.append(
                (
                    "place",
                    draw(st.integers(min_value=0, max_value=256)),
                    draw(st.integers(min_value=1, max_value=6)),
                )
            )
    return weights, ops, free


def _run_kernel_draw(backend_name, weights, ops, free, entropy):
    """Execute one batch on one backend; errors are part of the outcome."""
    backend = get_backend(backend_name)
    try:
        result = backend.batch_weighted_draw(
            sampler_stream(entropy, 0), weights, ops, free=free
        )
    except ValueError as error:
        return ("error", type(error).__name__, str(error))
    return ("ok", result.keys.tolist(), result.attempts, result.collisions)


@DIFF_SETTINGS
@given(batch=sampler_requests(), entropy=st.integers(min_value=0, max_value=2))
def test_batch_weighted_draw_backends_bit_identical(batch, entropy):
    """The contract itself: identical key sequences, attempt and collision
    counts -- or the identical refusal -- for every generated operation
    stream, over a small seed grid."""
    weights, ops, free = batch
    reference = _run_kernel_draw("reference", weights, ops, free, entropy)
    vectorized = _run_kernel_draw("vectorized", weights, ops, free, entropy)
    assert reference == vectorized


@DIFF_SETTINGS
@given(batch=sampler_requests(), entropy=st.integers(min_value=0, max_value=1))
def test_reference_kernel_is_the_fenwick_oracle(batch, entropy):
    """The reference backend must be a *thin wrapper*: replaying the draw
    ops through a hand-driven WeightedSampler on the same uint32 stream
    reproduces its keys exactly."""
    weights, ops, free = batch
    via_kernel = _run_kernel_draw("reference", weights, ops, free, entropy)

    sampler = WeightedSampler()
    for slot, weight in enumerate(weights):
        sampler.add(slot, weight)
    adapter = U32Randint(U32Stream(sampler_stream(entropy, 0)))
    remaining_free = list(free) if free is not None else None
    keys = []
    try:
        for op in ops:
            if op[0] == "set":
                sampler.update_weight(op[1], op[2])
            elif op[0] == "draw":
                for _ in range(op[1]):
                    keys.append(sampler.sample(adapter))
            else:
                placed = -1
                for _ in range(op[2]):
                    slot = sampler.sample(adapter)
                    if remaining_free[slot] >= op[1]:
                        remaining_free[slot] -= op[1]
                        placed = slot
                        break
                keys.append(placed)
    except ValueError:
        assert via_kernel[0] == "error"
        return
    assert via_kernel[0] == "ok" and via_kernel[1] == keys


@DIFF_SETTINGS
@given(
    weights=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=1, max_size=10
    ),
    entropy=st.integers(min_value=0, max_value=3),
)
def test_batch_draw_never_returns_zero_weight_slots(weights, entropy):
    if sum(weights) == 0:
        return
    for name in ("reference", "vectorized"):
        result = get_backend(name).batch_weighted_draw(
            sampler_stream(entropy, 0), weights, [("draw", 40)]
        )
        assert all(weights[int(slot)] > 0 for slot in result.keys)


@DIFF_SETTINGS
@given(entropy=st.integers(min_value=0, max_value=50))
def test_u32_stream_chunking_is_invariant(entropy):
    """Re-chunked peeks/takes read the same words -- the property that
    lets the vectorized backend decode candidates in bulk."""
    one = U32Stream(sampler_stream(entropy, 9))
    other = U32Stream(sampler_stream(entropy, 9))
    a = np.concatenate([one.take(3), one.take(1), one.take(60)])
    other.peek(64)  # lookahead must not consume
    b = other.take(64)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Discrete-event engine + lifecycle invariants (derandomized like the
# sampler differential pack: identical schedules on every run)
# ----------------------------------------------------------------------
@DIFF_SETTINGS
@given(
    schedule=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=-3, max_value=3),
        ),
        min_size=1,
        max_size=60,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=60, max_size=60),
)
def test_engine_executes_in_time_priority_sequence_order(schedule, cancel_mask):
    from repro.sim.engine import SimulationEngine

    engine = SimulationEngine()
    executed = []
    events = []
    for index, (time, priority) in enumerate(schedule):
        event = engine.schedule_at(
            time,
            (lambda e=index: executed.append(e)),
            priority=priority,
        )
        events.append((event, index))
    cancelled = set()
    for (event, index), drop in zip(events, cancel_mask):
        if drop:
            engine.cancel(event)
            cancelled.add(index)
    engine.run()
    # Cancelled events never ran; survivors ran exactly once ...
    assert set(executed) == {i for i in range(len(schedule)) if i not in cancelled}
    assert len(executed) == len(set(executed))
    # ... and strictly in (time, priority, sequence) order.
    keys = [(schedule[i][0], schedule[i][1], i) for i in executed]
    assert keys == sorted(keys)


@DIFF_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=30),
    mtbf=st.sampled_from([40.0, 120.0, 1e9]),
    timeout=st.sampled_from([25.0, 90.0]),
    regional=st.integers(min_value=0, max_value=2),
)
def test_lifecycle_invariants_hold_under_generated_dynamics(
    seed, mtbf, timeout, regional
):
    """Whatever the failure dynamics: a lost file never transitions again,
    provider capacity never goes negative, histories are valid chains."""
    from repro.sim.lifecycle import (
        FileLifecycleState,
        LifecycleConfig,
        LifecycleSimulation,
    )

    sim = LifecycleSimulation(
        LifecycleConfig(
            providers=6,
            regions=2,
            files=8,
            horizon_s=120.0,
            mtbf_s=mtbf,
            mttr_s=25.0,
            retrieval_rate=0.3,
            flash_crowds=1,
            regional_failures=regional,
            departures=1,
            degrade_timeout_s=timeout,
            seed=seed,
        )
    )
    row = sim.run()
    assert row["min_free_slots"] >= 0
    for name in sim.provider_names:
        assert 0 <= sim.used[name] <= sim.capacity[name]
    for machine in list(sim.registry.files.values()) + list(
        sim.registry.providers.values()
    ):
        for previous, current in zip(machine.history, machine.history[1:]):
            assert current.from_state is previous.to_state
            assert current.time >= previous.time
        for record in machine.history:
            assert machine.TRANSITIONS[(record.from_state, record.event)] is record.to_state
    for machine in sim.registry.files.values():
        lost_hits = [
            i
            for i, record in enumerate(machine.history)
            if record.to_state is FileLifecycleState.LOST
        ]
        if lost_hits:
            # LOST is entered once, as the final transition, ever.
            assert lost_hits == [len(machine.history) - 1]
            assert machine.state is FileLifecycleState.LOST


# ----------------------------------------------------------------------
# Columnar protocol engine: differential equivalence with the object
# engine under hypothesis-generated operation streams
# ----------------------------------------------------------------------
def _protocol_fingerprint(protocol):
    """Everything consensus-visible, as one comparable structure."""
    from repro.core.events import EventType

    return {
        "sectors": {
            sid: (rec.owner, rec.capacity, rec.free_capacity, rec.deposit,
                  rec.state.value, rec.registered_at, rec.stored_replicas)
            for sid, rec in sorted(protocol.sectors.items())
        },
        "files": {
            fid: (desc.owner, desc.size, desc.value, desc.replica_count,
                  desc.countdown, desc.state.value, desc.created_at,
                  desc.rent_paid, desc.compensation_received)
            for fid, desc in sorted(protocol.files.items())
        },
        "alloc": sorted(
            ((int(fid), int(idx)),
             (entry.prev, entry.next, entry.last_proof, entry.state.value))
            for (fid, idx), entry in protocol.alloc.all_entries()
        ),
        "pending": [
            (task.time, task.kind, tuple(sorted(task.payload.items())))
            for task in protocol.pending.tasks()
        ],
        "ledger": sorted(
            (account.address, account.balance, account.escrowed)
            for account in protocol.ledger.accounts()
        ),
        "events": {et.value: protocol.events.count(et) for et in EventType},
        "aggregates": (
            protocol.snapshot(),
            protocol.total_value_lost,
            protocol.stored_replica_bytes(),
        ),
    }


def _build_engine_pair(seed, backend, charge_fees):
    from repro.core.columnar import ColumnarProtocol
    from repro.core.params import ProtocolParams
    from repro.core.protocol import FileInsurerProtocol

    pair = []
    for cls in (FileInsurerProtocol, ColumnarProtocol):
        ledger = Ledger()
        protocol = cls(
            params=ProtocolParams.small_test(),
            ledger=ledger,
            prng=DeterministicPRNG.from_int(seed, domain="columnar-hyp"),
            health_oracle=lambda sector_id: True,
            auto_prove=True,
            charge_fees=charge_fees,
            backend=backend,
        )
        for index in range(4):
            owner = f"prov-{index}"
            ledger.mint(owner, 50_000_000)
            protocol.sector_register(owner, 4 * (1 << 20))
        ledger.mint("client", 500_000_000)
        pair.append(protocol)
    return pair


_HYP_OP = st.one_of(
    st.tuples(
        st.just("batch"),
        st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=3),
    ),
    st.tuples(st.just("add"), st.integers(min_value=1, max_value=16)),
    st.tuples(st.just("advance"), st.sampled_from([30.0, 65.0, 140.0])),
    st.tuples(st.just("crash"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("discard"), st.integers(min_value=0, max_value=40)),
    st.tuples(st.just("disable"), st.integers(min_value=0, max_value=3)),
)


def _apply_protocol_op(protocol, op):
    """Run one generated op; returns the error message if it was refused."""
    from repro.core.protocol import ProtocolError

    root = b"\x06" * 32
    try:
        if op[0] == "batch":
            sizes = [units * 16 * 1024 for units in op[1]]
            ids = protocol.file_add_batch("client", sizes, [op[2]] * len(sizes), root)
            protocol.confirm_batch(ids)
        elif op[0] == "add":
            file_id = protocol.file_add("client", op[1] * 16 * 1024, 1, root)
            for index, entry in protocol.alloc.entries_for_file(file_id):
                if entry.next is not None:
                    owner = protocol.sectors[entry.next].owner
                    protocol.file_confirm(owner, file_id, index, entry.next)
        elif op[0] == "advance":
            protocol.advance_time(protocol.now + op[1])
        elif op[0] == "crash":
            targets = sorted(protocol.sectors)
            target = targets[op[1] % len(targets)]
            if not protocol.sectors[target].is_corrupted:
                protocol.crash_sector(target)
        elif op[0] == "discard":
            if op[1] in protocol.files:
                protocol.file_discard("client", op[1])
        elif op[0] == "disable":
            targets = sorted(protocol.sectors)
            target = targets[op[1] % len(targets)]
            protocol.sector_disable(protocol.sectors[target].owner, target)
    except ProtocolError as error:
        return str(error)
    return None


@DIFF_SETTINGS
@given(
    ops=st.lists(_HYP_OP, min_size=1, max_size=12),
    seed=st.integers(min_value=0, max_value=7),
    backend=st.sampled_from(["reference", "vectorized"]),
    charge_fees=st.booleans(),
)
def test_columnar_engine_matches_object_engine(ops, seed, backend, charge_fees):
    """Any generated op stream leaves both engines in byte-identical state,
    refusing exactly the same operations with the same messages."""
    reference, columnar = _build_engine_pair(seed, backend, charge_fees)
    for op in ops:
        refused_ref = _apply_protocol_op(reference, op)
        refused_col = _apply_protocol_op(columnar, op)
        assert refused_col == refused_ref, op
    assert _protocol_fingerprint(columnar) == _protocol_fingerprint(reference)


@DIFF_SETTINGS
@given(
    ops=st.lists(_HYP_OP, min_size=1, max_size=10),
    seed=st.integers(min_value=0, max_value=7),
)
def test_columnar_engine_matches_across_kernel_backends(ops, seed):
    """The columnar engine itself is backend-independent: reference and
    vectorized kernels replay the same op stream to identical state."""
    protocols = {
        backend: _build_engine_pair(seed, backend, False)[1]
        for backend in ("reference", "vectorized")
    }
    for op in ops:
        refusals = {
            backend: _apply_protocol_op(protocol, op)
            for backend, protocol in protocols.items()
        }
        assert refusals["vectorized"] == refusals["reference"], op
    assert _protocol_fingerprint(protocols["vectorized"]) == _protocol_fingerprint(
        protocols["reference"]
    )
