"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.ledger import Ledger
from repro.core.drep import SectorContentPlan
from repro.core.large_files import LargeFileCodec
from repro.core.selector import WeightedSampler
from repro.crypto.erasure import ReedSolomonCode
from repro.crypto.merkle import MerkleTree
from repro.crypto.prng import DeterministicPRNG

SETTINGS = settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None)


# ----------------------------------------------------------------------
# Merkle trees
# ----------------------------------------------------------------------
@SETTINGS
@given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=40))
def test_merkle_every_leaf_proof_verifies(leaves):
    tree = MerkleTree(leaves)
    for index in range(len(leaves)):
        assert tree.prove(index).verify(tree.root)


@SETTINGS
@given(
    st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=20),
    st.integers(min_value=0, max_value=19),
)
def test_merkle_root_sensitive_to_any_leaf_change(leaves, position):
    position = position % len(leaves)
    tree = MerkleTree(leaves)
    mutated = list(leaves)
    mutated[position] = mutated[position] + b"\x01"
    assert MerkleTree(mutated).root != tree.root


# ----------------------------------------------------------------------
# Reed-Solomon erasure code
# ----------------------------------------------------------------------
@SETTINGS
@given(
    data=st.binary(min_size=0, max_size=300),
    data_shards=st.integers(min_value=1, max_value=6),
    parity_shards=st.integers(min_value=0, max_value=6),
    drop_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_reed_solomon_recovers_from_any_sufficient_subset(
    data, data_shards, parity_shards, drop_seed
):
    code = ReedSolomonCode(data_shards, parity_shards)
    shards = code.encode(data)
    prng = DeterministicPRNG.from_int(drop_seed, domain="rs-drop")
    surviving = list(shards)
    prng.shuffle(surviving)
    surviving = surviving[:data_shards]
    assert code.decode(surviving) == data


# ----------------------------------------------------------------------
# Weighted sampler (Fenwick tree)
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_weighted_sampler_total_weight_matches_contents(operations):
    sampler = WeightedSampler()
    expected = {}
    for index, (weight, remove_later) in enumerate(operations):
        key = f"k{index}"
        sampler.add(key, weight)
        expected[key] = weight
        if remove_later and index % 2 == 0:
            sampler.remove(key)
            del expected[key]
    assert sampler.total_weight == sum(expected.values())
    assert len(sampler) == len(expected)
    if sampler.total_weight > 0:
        prng = DeterministicPRNG.from_int(1, domain="sampler-prop")
        for _ in range(10):
            key = sampler.sample(prng)
            assert expected.get(key, 0) > 0


# ----------------------------------------------------------------------
# Ledger conservation
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["mint", "transfer", "lock", "release", "confiscate", "burn"]),
            st.integers(min_value=1, max_value=1000),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_ledger_conservation_under_arbitrary_operation_sequences(operations):
    ledger = Ledger()
    accounts = [f"acct-{i}" for i in range(4)]
    for op, amount, a, b in operations:
        src, dst = accounts[a], accounts[b]
        ledger.ensure_account(src)
        ledger.ensure_account(dst)
        try:
            if op == "mint":
                ledger.mint(src, amount)
            elif op == "transfer":
                ledger.transfer(src, dst, amount)
            elif op == "lock":
                ledger.lock(src, amount)
            elif op == "release":
                ledger.release(src, amount)
            elif op == "confiscate":
                ledger.confiscate(src, amount, recipient=dst)
            elif op == "burn":
                ledger.burn(src, amount)
        except Exception:
            # Failed operations must not corrupt the books either.
            pass
        assert ledger.check_conservation()


# ----------------------------------------------------------------------
# DRep invariant
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=40), st.booleans()),
        min_size=1,
        max_size=30,
    )
)
def test_drep_unsealed_space_always_below_one_cr(file_operations):
    plan = SectorContentPlan(capacity=1000, capacity_replica_size=50)
    stored = []
    for index, (size, remove_one) in enumerate(file_operations):
        label = f"f{index}"
        if size <= plan.free_for_files():
            plan.add_file(label, size)
            stored.append(label)
        if remove_one and stored:
            plan.remove_file(stored.pop())
        assert plan.invariant_holds()
        assert plan.file_bytes() + plan.capacity_replica_bytes() + plan.unsealed_space() == 1000


# ----------------------------------------------------------------------
# PRNG ranges
# ----------------------------------------------------------------------
@SETTINGS
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=0, max_value=200),
)
def test_prng_randint_always_within_bounds(seed, low, span):
    prng = DeterministicPRNG.from_int(seed, domain="prop-randint")
    high = low + span
    for _ in range(20):
        value = prng.randint(low, high)
        assert low <= value <= high


# ----------------------------------------------------------------------
# Large-file segmentation
# ----------------------------------------------------------------------
@SETTINGS
@given(
    data=st.binary(min_size=1, max_size=600),
    size_limit=st.integers(min_value=16, max_value=128),
    drop_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_large_file_survives_loss_of_half_the_segments(data, size_limit, drop_seed):
    codec = LargeFileCodec(size_limit=size_limit, k=10)
    segmented = codec.split(data, value=10)
    prng = DeterministicPRNG.from_int(drop_seed, domain="segment-drop")
    surviving = list(segmented.segments)
    prng.shuffle(surviving)
    # Keep exactly half the segments (the paper's survivability target).
    surviving = surviving[: segmented.total_segments // 2]
    assert codec.reassemble(segmented, surviving) == data
