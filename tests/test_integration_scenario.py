"""Integration tests: the end-to-end DSN scenario (chain + protocol + disks)."""

import pytest

from repro.core.events import EventType
from repro.core.file_descriptor import FileState
from repro.core.params import ProtocolParams
from repro.sim.scenario import DSNScenario, ScenarioConfig


def make_scenario(providers=4, sectors=2, clients=1, seed=42, **param_overrides):
    params = ProtocolParams.small_test()
    if param_overrides:
        params = params.scaled(**param_overrides)
    return DSNScenario(
        ScenarioConfig(
            params=params,
            provider_count=providers,
            sectors_per_provider=sectors,
            client_count=clients,
            seed=seed,
        )
    )


class TestStoreAndRetrieve:
    def test_store_settle_and_locations(self):
        scenario = make_scenario()
        data = b"important NFT metadata" * 50
        file_id = scenario.store_file("client-0", "nft.json", data, value=1)
        scenario.settle_uploads()
        descriptor = scenario.protocol.files[file_id]
        assert descriptor.state == FileState.NORMAL
        locations = scenario.protocol.file_locations(file_id)
        assert len(locations) == descriptor.replica_count
        assert all(location is not None for location in locations)

    def test_retrieve_verifies_against_merkle_root(self):
        scenario = make_scenario()
        data = b"retrieve me" * 200
        file_id = scenario.store_file("client-0", "doc", data, value=1)
        scenario.settle_uploads()
        assert scenario.retrieve_file("client-0", file_id) == data

    def test_encrypted_file_roundtrip(self):
        scenario = make_scenario()
        secret = b"do not read this" * 30
        file_id = scenario.store_file("client-0", "secret", secret, value=1, encrypt=True)
        scenario.settle_uploads()
        payload = scenario.retrieve_file("client-0", file_id)
        assert payload != secret
        assert scenario.clients["client-0"].decrypt(payload) == secret

    def test_multiple_files_multiple_clients(self):
        scenario = make_scenario(clients=2)
        ids = []
        for index in range(4):
            client = f"client-{index % 2}"
            ids.append(scenario.store_file(client, f"f{index}", bytes([index]) * 500, value=1))
        scenario.settle_uploads()
        stored = [scenario.protocol.files[i].state for i in ids]
        assert all(state == FileState.NORMAL for state in stored)

    def test_discard_frees_physical_storage_eventually(self):
        scenario = make_scenario()
        data = b"temporary" * 100
        file_id = scenario.store_file("client-0", "tmp", data, value=1)
        scenario.settle_uploads()
        scenario.discard_file("client-0", file_id)
        scenario.run_cycles(2)
        assert scenario.protocol.files[file_id].state == FileState.DISCARDED
        assert len(scenario.protocol.alloc.entries_for_file(file_id)) == 0


class TestRefreshEndToEnd:
    def test_replicas_move_and_stay_retrievable(self):
        scenario = make_scenario(providers=5, avg_refresh=2.0)
        data = b"moving target" * 100
        file_id = scenario.store_file("client-0", "mv", data, value=1)
        scenario.settle_uploads()
        initial = set(scenario.protocol.file_locations(file_id))
        scenario.run_cycles(25)
        final = set(scenario.protocol.file_locations(file_id))
        assert scenario.protocol.events.count(EventType.FILE_REFRESH_COMPLETED) >= 1
        assert scenario.protocol.files[file_id].state == FileState.NORMAL
        assert scenario.retrieve_file("client-0", file_id) == data
        # Locations should have churned at least once over 25 cycles.
        assert initial != final or scenario.protocol.events.count(
            EventType.FILE_REFRESH_COMPLETED
        ) >= 1


class TestCrashAndCompensation:
    def test_partial_crash_file_survives_and_retrievable(self):
        scenario = make_scenario(providers=5)
        data = b"resilient" * 120
        file_id = scenario.store_file("client-0", "r", data, value=1)
        scenario.settle_uploads()
        hosts = {
            scenario.sector_map[s][0]
            for s in scenario.protocol.file_locations(file_id)
            if s is not None
        }
        victim = sorted(hosts)[0]
        scenario.crash_provider(victim)
        scenario.run_cycles(8)
        assert scenario.protocol.files[file_id].state == FileState.NORMAL
        assert scenario.retrieve_file("client-0", file_id) == data

    def test_total_crash_compensates_client(self):
        scenario = make_scenario(providers=4)
        data = b"doomed" * 100
        file_id = scenario.store_file("client-0", "d", data, value=1)
        scenario.settle_uploads()
        hosts = {
            scenario.sector_map[s][0]
            for s in scenario.protocol.file_locations(file_id)
            if s is not None
        }
        for provider in hosts:
            scenario.crash_provider(provider)
        scenario.run_cycles(10)
        descriptor = scenario.protocol.files[file_id]
        assert descriptor.state == FileState.LOST
        assert descriptor.compensation_received >= descriptor.value
        assert scenario.protocol.events.count(EventType.DEPOSIT_CONFISCATED) >= 1
        with pytest.raises(LookupError):
            scenario.retrieve_file("client-0", file_id)

    def test_undetected_crash_found_via_missed_proofs(self):
        scenario = make_scenario(providers=4)
        file_id = scenario.store_file("client-0", "x", b"quiet failure" * 50, value=1)
        scenario.settle_uploads()
        hosts = {
            scenario.sector_map[s][0]
            for s in scenario.protocol.file_locations(file_id)
            if s is not None
        }
        for provider in hosts:
            scenario.crash_provider(provider, immediate_detection=False)
        # Detection needs the proof deadline to pass plus a checkpoint.
        cycles = int(scenario.config.params.proof_deadline // scenario.config.params.proof_cycle) + 3
        scenario.run_cycles(cycles)
        assert scenario.protocol.files[file_id].state == FileState.LOST

    def test_ledger_conserved_through_crashes(self):
        scenario = make_scenario(providers=4)
        file_id = scenario.store_file("client-0", "x", b"abc" * 100, value=1)
        scenario.settle_uploads()
        for provider in list(scenario.providers)[:2]:
            scenario.crash_provider(provider)
        scenario.run_cycles(12)
        assert scenario.ledger.check_conservation()


class TestChurn:
    def test_new_provider_receives_refreshed_replicas(self):
        scenario = make_scenario(providers=3, avg_refresh=2.0)
        file_id = scenario.store_file("client-0", "x", b"churny" * 80, value=1)
        scenario.settle_uploads()
        scenario.add_provider("provider-late", sectors=2)
        scenario.run_cycles(30)
        locations = [s for s in scenario.protocol.file_locations(file_id) if s]
        owners = {scenario.sector_map[s][0] for s in locations}
        # Not guaranteed every run, but over 30 cycles with avg_refresh=2 the
        # newcomer should get at least one replica with overwhelming
        # probability; assert the system at least kept the file healthy and
        # the newcomer is selectable.
        assert scenario.protocol.files[file_id].state == FileState.NORMAL
        assert any(
            scenario.protocol.selector.contains(s)
            for s, (owner, _) in scenario.sector_map.items()
            if owner == "provider-late"
        )

    def test_summary_keys(self):
        scenario = make_scenario()
        scenario.store_file("client-0", "x", b"s" * 10, value=1)
        scenario.settle_uploads()
        summary = scenario.summary()
        assert {"files_stored", "healthy_providers", "bytes_transferred"} <= set(summary)
