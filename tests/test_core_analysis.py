"""Tests for the closed-form Theorems 1-4."""

import math

import pytest

from repro.core.analysis import (
    FilePopulation,
    expected_file_loss_probability,
    expected_lost_value_fraction,
    scalability_r1,
    scalability_r2,
    theorem1_max_storable_size,
    theorem2_collision_probability_bound,
    theorem3_loss_ratio_bound,
    theorem4_deposit_ratio_bound,
)

GIB = 1 << 30


class TestFilePopulation:
    def test_aggregates(self):
        population = FilePopulation(sizes=(10, 20), values=(1, 3))
        assert population.total_size == 30
        assert population.total_value == 4
        assert population.size_value_product == 10 + 60

    def test_from_pairs(self):
        population = FilePopulation.from_pairs([(10, 1), (20, 3)])
        assert population.total_size == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            FilePopulation(sizes=(1,), values=(1, 2))
        with pytest.raises(ValueError):
            FilePopulation(sizes=(0,), values=(1,))


class TestTheorem1:
    def test_equal_value_population_r1_is_one(self):
        population = FilePopulation(sizes=(5, 10, 15), values=(1, 1, 1))
        assert scalability_r1(population) == pytest.approx(1.0)

    def test_r2_formula(self):
        population = FilePopulation(sizes=(100,), values=(2,))
        r2 = scalability_r2(population, min_capacity=1000, cap_para=10.0)
        assert r2 == pytest.approx(1000 * 2 / (100 * 10.0))

    def test_bound_is_linear_in_ns(self):
        one = theorem1_max_storable_size(1000, GIB, 20, r1=1.0, r2=1.0)
        ten = theorem1_max_storable_size(10_000, GIB, 20, r1=1.0, r2=1.0)
        assert ten == pytest.approx(10 * one)

    def test_bound_takes_minimum_of_two_restrictions(self):
        capacity_bound = theorem1_max_storable_size(100, GIB, 20, r1=1.0, r2=1e-6)
        value_bound = theorem1_max_storable_size(100, GIB, 20, r1=1e-6, r2=1000.0)
        assert capacity_bound == pytest.approx(100 * GIB / (2 * 20))
        assert value_bound == pytest.approx(100 * GIB / 1000.0)

    def test_invalid_ratios_rejected(self):
        with pytest.raises(ValueError):
            theorem1_max_storable_size(100, GIB, 20, r1=0, r2=1)


class TestTheorem2:
    def test_bound_decreases_with_ratio(self):
        loose = theorem2_collision_probability_bound(1e6, 100, 1)
        tight = theorem2_collision_probability_bound(1e6, 1000, 1)
        assert tight < loose

    def test_paper_operating_point_below_1e50(self):
        bound = theorem2_collision_probability_bound(1e12, 1000, 1)
        assert bound < 1e-50

    def test_bound_scales_linearly_with_ns(self):
        a = theorem2_collision_probability_bound(10, 500, 1)
        b = theorem2_collision_probability_bound(20, 500, 1)
        assert b == pytest.approx(2 * a)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            theorem2_collision_probability_bound(10, 0, 1)


class TestTheorem3:
    PAPER = dict(k=20, ns=1e6, cap_para=1e3, gamma_m_v=0.005, security_c=1e-18)

    def test_paper_example_first_two_terms_match(self):
        """The paper's Section V-B3 example lists the first two max-terms as
        5e-6 and 0.001; check the formula reproduces them exactly."""
        assert 5 * 0.5**20 == pytest.approx(5e-6, rel=0.05)
        assert 0.5 ** (20 / 2) == pytest.approx(0.001, rel=0.05)

    def test_loss_below_one_permille_when_network_reasonably_utilised(self):
        """The headline "<= 0.1% lost at lambda=0.5" claim.

        Evaluated exactly as written, Theorem 3's third term equals 0.04 at
        gamma_m_v = 0.005 (the paper's inline example appears to mis-evaluate
        it; see EXPERIMENTS.md).  The 0.1% claim does hold once the network
        carries at least ~20% of its maximum value, which is the regime we
        assert here.
        """
        bound = theorem3_loss_ratio_bound(
            lam=0.5, k=20, ns=1e6, cap_para=1e3, gamma_m_v=0.25, security_c=1e-18
        )
        assert bound <= 0.001 + 1e-12
        assert bound == pytest.approx(0.5 ** 10)

    def test_third_term_scales_inversely_with_gamma_m_v(self):
        low = theorem3_loss_ratio_bound(lam=0.5, k=20, ns=1e6, cap_para=1e3, gamma_m_v=0.001)
        high = theorem3_loss_ratio_bound(lam=0.5, k=20, ns=1e6, cap_para=1e3, gamma_m_v=0.01)
        assert low == pytest.approx(10 * high, rel=0.05)

    def test_bound_increases_with_lambda(self):
        low = theorem3_loss_ratio_bound(lam=0.3, **self.PAPER)
        high = theorem3_loss_ratio_bound(lam=0.6, **self.PAPER)
        assert high > low

    def test_bound_decreases_with_k(self):
        weak = theorem3_loss_ratio_bound(lam=0.5, k=6, ns=1e6, cap_para=1e3, gamma_m_v=0.005)
        strong = theorem3_loss_ratio_bound(lam=0.5, k=30, ns=1e6, cap_para=1e3, gamma_m_v=0.005)
        assert strong < weak

    def test_bound_always_at_least_expected_loss(self):
        for lam in (0.2, 0.4, 0.6, 0.8):
            bound = theorem3_loss_ratio_bound(lam=lam, **self.PAPER)
            assert bound >= expected_lost_value_fraction(lam, 20)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            theorem3_loss_ratio_bound(lam=0.0, **self.PAPER)
        with pytest.raises(ValueError):
            theorem3_loss_ratio_bound(lam=1.0, **self.PAPER)


class TestTheorem4:
    PAPER = dict(k=20, ns=1e6, cap_para=1e3, security_c=1e-18)

    def test_paper_example_deposit_ratio(self):
        bound = theorem4_deposit_ratio_bound(lam=0.5, **self.PAPER)
        assert bound == pytest.approx(0.0046, abs=0.0002)

    def test_deposit_ratio_increases_with_lambda(self):
        assert theorem4_deposit_ratio_bound(lam=0.75, **self.PAPER) > theorem4_deposit_ratio_bound(
            lam=0.5, **self.PAPER
        )

    def test_deposit_ratio_covers_loss_ratio(self):
        """Consistency: gamma_deposit * lambda >= gamma_lost bound / capPara terms.

        The deposit of the corrupted lambda fraction must cover the lost
        value; sanity-check the two bounds are mutually consistent at the
        paper's parameters (Theorem 4 is derived from Theorem 3).
        """
        lam = 0.5
        deposit = theorem4_deposit_ratio_bound(lam=lam, **self.PAPER)
        loss = theorem3_loss_ratio_bound(lam=lam, gamma_m_v=1.0, k=20, ns=1e6, cap_para=1e3)
        # gamma_deposit * lambda * Nm_v >= gamma_lost * Nv  with Nv <= Nm_v
        assert deposit * lam >= loss - 1e-12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            theorem4_deposit_ratio_bound(lam=0.5, k=20, ns=1.0, cap_para=1e3)
        with pytest.raises(ValueError):
            theorem4_deposit_ratio_bound(lam=0.5, k=20, ns=1e6, cap_para=1e3, security_c=2.0)


class TestExpectations:
    def test_loss_probability_is_lambda_to_k(self):
        assert expected_file_loss_probability(0.5, 3) == pytest.approx(0.125)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            expected_file_loss_probability(1.5, 3)
        with pytest.raises(ValueError):
            expected_file_loss_probability(0.5, 0)
