"""ResultStore cache-key contract tests (hit/miss/quarantine)."""

from __future__ import annotations

import pytest

from repro.campaign.store import ResultStore, cache_key
from repro.runner.results import RunManifest

PARAMS = {"trials": 3, "scale": 1}


def _manifest(scenario="camp-alpha", params=None, seed=0, version="v1"):
    return RunManifest(
        scenario=scenario,
        params=dict(params if params is not None else PARAMS),
        seed=seed,
        workers=1,
        trial_count=1,
        duration_seconds=0.0,
        rows=[{"trial": 0, "seed": 123, "value": 1.0}],
        summary=[],
        version=version,
        created_unix=0.0,
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store", version="v1")


class TestCacheKey:
    def test_stable_for_identical_cells(self):
        assert cache_key("s", PARAMS, 0, "v1") == cache_key("s", dict(PARAMS), 0, "v1")

    def test_key_order_is_canonical(self):
        shuffled = {"scale": 1, "trials": 3}
        assert cache_key("s", PARAMS, 0, "v1") == cache_key("s", shuffled, 0, "v1")

    def test_tuples_and_lists_encode_identically(self):
        assert cache_key("s", {"axes": (1, 2)}, 0, "v1") == cache_key(
            "s", {"axes": [1, 2]}, 0, "v1"
        )

    @pytest.mark.parametrize(
        "other",
        [
            ("s", {"trials": 4, "scale": 1}, 0, "v1"),  # changed param value
            ("s", PARAMS, 1, "v1"),  # changed seed
            ("s", PARAMS, 0, "v2"),  # changed repo version
            ("t", PARAMS, 0, "v1"),  # changed scenario
        ],
    )
    def test_any_drift_changes_the_key(self, other):
        assert cache_key("s", PARAMS, 0, "v1") != cache_key(*other)


class TestStoreHitMiss:
    def test_identical_cell_hits(self, store):
        store.put(_manifest())
        hit = store.get("camp-alpha", PARAMS, 0)
        assert hit is not None
        assert hit.rows == [{"trial": 0, "seed": 123, "value": 1.0}]

    def test_changed_param_misses(self, store):
        store.put(_manifest())
        assert store.get("camp-alpha", {"trials": 4, "scale": 1}, 0) is None

    def test_changed_seed_misses(self, store):
        store.put(_manifest())
        assert store.get("camp-alpha", PARAMS, 1) is None

    def test_changed_version_misses(self, store, tmp_path):
        store.put(_manifest())
        newer = ResultStore(tmp_path / "store", version="v2")
        assert newer.get("camp-alpha", PARAMS, 0) is None

    def test_manifest_keeps_its_own_version_string(self, store):
        """The key binds the store's version token; the stored manifest's
        own version field stays truthful and is not re-checked on get."""
        store.put(_manifest(version="some-real-git-hash"))
        hit = store.get("camp-alpha", PARAMS, 0)
        assert hit is not None
        assert hit.version == "some-real-git-hash"

    def test_contains_probe(self, store):
        assert ("camp-alpha", PARAMS, 0) not in store
        store.put(_manifest())
        assert ("camp-alpha", PARAMS, 0) in store


class TestQuarantine:
    def _poison(self, store, text):
        store.put(_manifest())
        path = store.path_for(store.key_for("camp-alpha", PARAMS, 0))
        path.write_text(text)
        return path

    def test_corrupt_json_quarantined_not_crashed(self, store):
        path = self._poison(store, "{definitely not json")
        assert store.get("camp-alpha", PARAMS, 0) is None
        assert not path.exists()
        assert path.with_suffix(".json.quarantined").exists()
        assert store.stats() == {"stored": 0, "quarantined": 1}

    def test_wrong_shape_json_quarantined_not_crashed(self, store):
        """Valid JSON of the wrong shape (rows not a list) must be a
        quarantined miss, not a TypeError mid-campaign."""
        path = self._poison(
            store,
            '{"scenario": "camp-alpha", "params": {}, "seed": 0, '
            '"workers": 1, "rows": 5}',
        )
        assert store.get("camp-alpha", PARAMS, 0) is None
        assert path.with_suffix(".json.quarantined").exists()

    def test_json_array_quarantined_not_crashed(self, store):
        path = self._poison(store, "[1, 2, 3]")
        assert store.get("camp-alpha", PARAMS, 0) is None
        assert path.with_suffix(".json.quarantined").exists()

    def test_provenance_mismatch_quarantined(self, store):
        # A manifest for a *different* cell filed under this key (e.g. a
        # hand-copied store directory) must not be trusted.
        path = self._poison(store, _manifest(seed=9).to_json())
        assert store.get("camp-alpha", PARAMS, 0) is None
        assert path.with_suffix(".json.quarantined").exists()

    def test_readonly_probe_does_not_quarantine(self, store):
        path = self._poison(store, "{broken")
        assert store.get("camp-alpha", PARAMS, 0, quarantine=False) is None
        assert path.exists()

    def test_slot_refillable_after_quarantine(self, store):
        self._poison(store, "{broken")
        assert store.get("camp-alpha", PARAMS, 0) is None
        store.put(_manifest())
        assert store.get("camp-alpha", PARAMS, 0) is not None
        assert store.stats() == {"stored": 1, "quarantined": 1}


class TestStoreLayout:
    def test_two_char_fanout(self, store):
        path = store.put(_manifest())
        key = store.key_for("camp-alpha", PARAMS, 0)
        assert path == store.root / key[:2] / f"{key}.json"

    def test_entries_lists_stored_manifests(self, store):
        assert list(store.entries()) == []
        path = store.put(_manifest())
        assert list(store.entries()) == [path]

    def test_default_version_extends_repo_version(self, tmp_path):
        from repro.campaign.store import store_version
        from repro.runner.results import repo_version

        version = ResultStore(tmp_path).version
        assert version == store_version()
        base = repo_version()
        if base.endswith("-dirty"):
            # Dirty trees get a digest of the uncommitted diff appended,
            # so further edits invalidate the cache.
            assert version.startswith(base + "+")
            assert len(version) == len(base) + 9
        else:
            assert version == base
