"""Tests for the deterministic PRNG."""

import math

import pytest

from repro.crypto.prng import DeterministicPRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicPRNG(b"seed")
        b = DeterministicPRNG(b"seed")
        assert a.random_bytes(64) == b.random_bytes(64)

    def test_different_seeds_differ(self):
        a = DeterministicPRNG(b"seed-a")
        b = DeterministicPRNG(b"seed-b")
        assert a.random_bytes(64) != b.random_bytes(64)

    def test_domain_separation(self):
        a = DeterministicPRNG(b"seed", domain="x")
        b = DeterministicPRNG(b"seed", domain="y")
        assert a.random_bytes(32) != b.random_bytes(32)

    def test_spawn_independent_children(self):
        parent = DeterministicPRNG(b"seed")
        c1 = parent.spawn("child", 0)
        c2 = parent.spawn("child", 1)
        assert c1.random_bytes(32) != c2.random_bytes(32)

    def test_from_int_deterministic(self):
        assert (
            DeterministicPRNG.from_int(42).random_bytes(16)
            == DeterministicPRNG.from_int(42).random_bytes(16)
        )


class TestDistributions:
    def test_randint_within_bounds(self):
        prng = DeterministicPRNG(b"seed")
        values = [prng.randint(3, 9) for _ in range(500)]
        assert all(3 <= v <= 9 for v in values)
        assert set(values) == set(range(3, 10))

    def test_randint_single_value_range(self):
        prng = DeterministicPRNG(b"seed")
        assert prng.randint(5, 5) == 5

    def test_randint_rejects_inverted_range(self):
        prng = DeterministicPRNG(b"seed")
        with pytest.raises(ValueError):
            prng.randint(5, 4)

    def test_random_in_unit_interval(self):
        prng = DeterministicPRNG(b"seed")
        values = [prng.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.05

    def test_expovariate_mean(self):
        prng = DeterministicPRNG(b"seed")
        mean = 10.0
        values = [prng.expovariate(mean) for _ in range(3000)]
        assert all(v >= 0 for v in values)
        assert abs(sum(values) / len(values) - mean) < 1.0

    def test_expovariate_rejects_nonpositive_mean(self):
        prng = DeterministicPRNG(b"seed")
        with pytest.raises(ValueError):
            prng.expovariate(0)

    def test_weighted_index_respects_weights(self):
        prng = DeterministicPRNG(b"seed")
        counts = [0, 0]
        for _ in range(2000):
            counts[prng.weighted_index([1.0, 9.0])] += 1
        assert counts[1] > counts[0] * 4

    def test_weighted_index_rejects_zero_total(self):
        prng = DeterministicPRNG(b"seed")
        with pytest.raises(ValueError):
            prng.weighted_index([0.0, 0.0])


class TestSequences:
    def test_choice_returns_member(self):
        prng = DeterministicPRNG(b"seed")
        items = ["a", "b", "c"]
        assert all(prng.choice(items) in items for _ in range(50))

    def test_choice_empty_raises(self):
        prng = DeterministicPRNG(b"seed")
        with pytest.raises(IndexError):
            prng.choice([])

    def test_shuffle_is_permutation(self):
        prng = DeterministicPRNG(b"seed")
        items = list(range(20))
        shuffled = list(items)
        prng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_sample_indices_distinct(self):
        prng = DeterministicPRNG(b"seed")
        indices = prng.sample_indices(100, 10)
        assert len(indices) == len(set(indices)) == 10
        assert all(0 <= i < 100 for i in indices)

    def test_sample_indices_too_many_raises(self):
        prng = DeterministicPRNG(b"seed")
        with pytest.raises(ValueError):
            prng.sample_indices(5, 6)


class TestMisc:
    def test_random_bytes_negative_raises(self):
        with pytest.raises(ValueError):
            DeterministicPRNG(b"seed").random_bytes(-1)

    def test_seed_must_be_bytes(self):
        with pytest.raises(TypeError):
            DeterministicPRNG("not-bytes")  # type: ignore[arg-type]

    def test_state_fingerprint_changes_after_use(self):
        prng = DeterministicPRNG(b"seed")
        before = prng.state_fingerprint()
        prng.random_bytes(10)
        assert prng.state_fingerprint() != before
