"""Metrics recorder: bucket math, summaries, inertness, CLI surface.

The load-bearing property mirrors the span recorder's: enabling metrics
must not perturb a single deterministic byte.  The sharpest corner is
the lifecycle engine's gauge sampling -- it runs through a
``metrics_probe`` hook on the event loop, *never* through scheduled
events, because ``events_processed`` / ``events_cancelled`` are part of
the per-trial rows and observability must not move them.  The row
byte-identity assertions here would catch any regression to scheduled
sampling immediately.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.telemetry import metrics
from repro.runner.cli import main
from repro.runner.executor import run_scenario
from repro.runner.registry import load_builtin_scenarios
from repro.runner.results import RunManifest
from repro.kernels import BACKEND_ENV_VAR

#: A lifecycle_churn shape small enough for test time but crossing every
#: instrumented metric: retrievals (latency histogram), degradations and
#: refreshes (refresh-lag histogram), and the per-state gauges.
LIFECYCLE_PARAMS = {"trials": 2, "files": 6, "horizon_s": 120.0}


@pytest.fixture(autouse=True)
def clean_metrics():
    metrics.reset()
    yield
    metrics.reset()


def run_lifecycle(seed: int = 7, workers: int = 1) -> RunManifest:
    load_builtin_scenarios()
    return run_scenario(
        "lifecycle_churn", overrides=LIFECYCLE_PARAMS, workers=workers, seed=seed
    )


class TestRecorder:
    def test_disabled_recording_is_a_no_op(self):
        metrics.observe("x", 1.0)
        metrics.gauge("y", 0.0, 2.0)
        assert metrics.samples() == []
        assert not metrics.is_enabled()

    def test_enabled_recording_buffers_samples(self):
        metrics.enable()
        metrics.observe("lat", 0.25, category="test")
        metrics.gauge("depth", 10.0, 3.0, category="test")
        hist, series = metrics.drain()
        assert hist["kind"] == "hist" and hist["value"] == 0.25
        assert series["kind"] == "gauge" and series["t"] == 10.0
        assert metrics.samples() == []

    def test_capture_isolates_and_extend_merges(self):
        metrics.enable()
        metrics.observe("outer", 1.0)
        with metrics.capture() as inner:
            metrics.observe("inner", 2.0)
        # The outer buffer never saw the captured sample ...
        assert [s["name"] for s in metrics.samples()] == ["outer"]
        # ... until it is merged back explicitly, envelope-style.
        metrics.extend(inner)
        assert [s["name"] for s in metrics.samples()] == ["outer", "inner"]

    def test_reset_disables_and_clears(self):
        metrics.enable()
        metrics.observe("x", 1.0)
        metrics.reset()
        assert not metrics.is_enabled()
        assert metrics.samples() == []


class TestBucketMath:
    def test_underflow_and_overflow_buckets(self):
        assert metrics.bucket_index(0.0) == 0
        assert metrics.bucket_index(metrics.BUCKET_BOUNDS[0]) == 0
        assert metrics.bucket_index(metrics.BUCKET_BOUNDS[-1] * 2) == len(
            metrics.BUCKET_BOUNDS
        )

    def test_bounds_are_half_open_upper_inclusive(self):
        # 1.0 is a bound; values at a bound land in the bucket it closes.
        index = metrics.bucket_index(1.0)
        low, high = metrics.bucket_bounds(index)
        assert low < 1.0 <= high == 1.0
        # Just above a bound rolls into the next bucket.
        assert metrics.bucket_index(1.0000001) == index + 1

    def test_every_positive_value_lands_in_its_bounds(self):
        for exponent in range(-25, 25):
            value = 1.3 * 2.0**exponent
            low, high = metrics.bucket_bounds(metrics.bucket_index(value))
            assert low < value <= high or (low == 0.0 and value <= high)

    def test_invalid_bucket_index_raises(self):
        with pytest.raises(ValueError):
            metrics.bucket_bounds(-1)
        with pytest.raises(ValueError):
            metrics.bucket_bounds(len(metrics.BUCKET_BOUNDS) + 1)


class TestSummaries:
    def test_histogram_statistics(self):
        metrics.enable()
        for value in (0.1, 0.2, 0.4, 0.8):
            metrics.observe("lat", value, category="test")
        summary = metrics.summarize_metrics(metrics.drain())
        entry = summary["histograms"]["lat"]
        assert entry["count"] == 4
        assert entry["min"] == 0.1
        assert entry["max"] == 0.8
        assert math.isclose(entry["sum"], 1.5)
        assert math.isclose(entry["mean"], 0.375)
        # Quantile estimates are clamped to the observed value range.
        assert 0.1 <= entry["p50"] <= entry["p99"] <= 0.8
        assert sum(entry["buckets"].values()) == 4

    def test_single_sample_reports_its_exact_value(self):
        metrics.enable()
        metrics.observe("one", 0.37)
        entry = metrics.summarize_metrics(metrics.drain())["histograms"]["one"]
        assert entry["p50"] == entry["p99"] == 0.37

    def test_gauge_series_aggregate_per_checkpoint(self):
        metrics.enable()
        # Two trials sampling the same simulated-time checkpoints.
        for value in (10.0, 20.0):
            metrics.gauge("depth", 0.0, value)
            metrics.gauge("depth", 5.0, value + 1)
        summary = metrics.summarize_metrics(metrics.drain())
        points = summary["series"]["depth"]["points"]
        assert [point["t"] for point in points] == [0.0, 5.0]
        assert points[0] == {"t": 0.0, "mean": 15.0, "min": 10.0, "max": 20.0, "n": 2}

    def test_summary_is_json_round_trippable_and_sorted(self):
        metrics.enable()
        metrics.observe("b", 1.0)
        metrics.observe("a", 2.0)
        metrics.gauge("z", 0.0, 1.0)
        summary = metrics.summarize_metrics(metrics.drain())
        assert list(summary["histograms"]) == ["a", "b"]
        assert json.loads(json.dumps(summary)) == summary

    def test_tables_render_rows(self):
        metrics.enable()
        metrics.observe("lat", 0.5)
        metrics.gauge("depth", 0.0, 3.0)
        summary = metrics.summarize_metrics(metrics.drain())
        assert metrics.histogram_table(summary)[0]["histogram"] == "lat"
        assert metrics.series_table(summary)[0]["gauge"] == "depth"
        assert metrics.histogram_table({}) == []
        assert metrics.series_table({}) == []


class TestInertness:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_rows_byte_identical_on_vs_off(self, monkeypatch, backend):
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        plain = run_lifecycle()
        metrics.enable()
        metered = run_lifecycle()
        metrics.disable()
        assert json.dumps(metered.rows, sort_keys=True) == json.dumps(
            plain.rows, sort_keys=True
        )
        assert metered.trial_rows_equal(plain)
        # Especially: the gauge probe must not have consumed engine events.
        for metered_row, plain_row in zip(metered.rows, plain.rows):
            assert metered_row["events_processed"] == plain_row["events_processed"]
            assert metered_row["events_cancelled"] == plain_row["events_cancelled"]
        # The metered run really recorded: histograms and gauges present.
        assert plain.metrics is None
        assert "lifecycle.retrieval_latency_s" in metered.metrics["histograms"]
        assert "lifecycle.refresh_lag_s" in metered.metrics["histograms"]
        assert "lifecycle.replica_count" in metered.metrics["histograms"]
        assert "lifecycle.active_providers" in metered.metrics["series"]
        assert any(
            name.startswith("lifecycle.files.") for name in metered.metrics["series"]
        )

    def test_pooled_samples_ship_back_and_rows_match_serial(self):
        serial = run_lifecycle(workers=1)
        metrics.enable()
        pooled = run_lifecycle(workers=2)
        metrics.disable()
        assert pooled.trial_rows_equal(serial)
        summary = pooled.metrics
        # Both workers' latency samples arrived in the parent's summary:
        # the histogram count equals the served retrievals across trials.
        total = sum(row["served"] for row in pooled.rows)
        assert total > 0
        assert summary["histograms"]["lifecycle.retrieval_latency_s"]["count"] == total

    def test_manifest_metrics_field_round_trips(self):
        metrics.enable()
        manifest = run_lifecycle()
        clone = RunManifest.from_dict(json.loads(manifest.to_json()))
        assert clone.metrics == manifest.metrics
        assert clone.trial_rows_equal(manifest)

    def test_retrieval_load_records_latency_histogram(self):
        load_builtin_scenarios()
        overrides = {"trials": 1, "requests": 20, "rates": "2"}
        plain = run_scenario("retrieval_load", overrides=overrides, seed=3)
        metrics.enable()
        metered = run_scenario("retrieval_load", overrides=overrides, seed=3)
        metrics.disable()
        assert metered.trial_rows_equal(plain)
        assert metered.metrics["histograms"]["retrieval.latency_s"]["count"] > 0


class TestCLI:
    def _run(self, tmp_path, capsys, extra=()):
        out_path = tmp_path / "lc.json"
        args = ["run", "lifecycle_churn", "--quiet", "--seed", "7"]
        for key, value in LIFECYCLE_PARAMS.items():
            args += ["--set", f"{key}={value}"]
        code = main(args + ["--out", str(out_path)] + list(extra))
        assert code == 0
        return out_path, capsys.readouterr().out

    def test_metrics_flag_embeds_summary_and_prints_tables(self, tmp_path, capsys):
        out_path, out = self._run(tmp_path, capsys, extra=["--metrics"])
        assert "histograms" in out
        assert "lifecycle.retrieval_latency_s" in out
        assert "gauge series" in out
        manifest = json.loads(out_path.read_text())
        assert manifest["metrics"]["histograms"]
        # Global recorder state is clean for the next command.
        assert not metrics.is_enabled()
        assert metrics.samples() == []

    def test_metrics_rows_match_plain_rows(self, tmp_path, capsys):
        metered_path, _ = self._run(tmp_path, capsys, extra=["--metrics"])
        metered = json.loads(metered_path.read_text())
        plain_path = tmp_path / "plain.json"
        args = ["run", "lifecycle_churn", "--quiet", "--seed", "7"]
        for key, value in LIFECYCLE_PARAMS.items():
            args += ["--set", f"{key}={value}"]
        assert main(args + ["--out", str(plain_path)]) == 0
        plain = json.loads(plain_path.read_text())
        assert metered["rows"] == plain["rows"]
        assert plain["metrics"] is None

    def test_trace_verb_prints_and_dumps_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        out_path, _ = self._run(
            tmp_path, capsys, extra=["--metrics", "--trace", str(trace_path)]
        )
        assert main(["trace", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "metric histograms" in out
        assert main(["trace", str(out_path), "--json"]) == 0
        dump = json.loads(capsys.readouterr().out)
        assert dump["scenario"] == "lifecycle_churn"
        assert dump["spans"]
        # phase_table orders spans by total time descending.
        totals = [row["total_ms"] for row in dump["spans"]]
        assert totals == sorted(totals, reverse=True)
        assert "lifecycle.retrieval_latency_s" in dump["metrics"]["histograms"]
