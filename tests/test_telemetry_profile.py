"""Per-trial profiling: raw-stats merging, pstats artifacts, CLI, inertness.

Profiling is the one observability layer that is allowed to cost wall
time while on (cProfile's tracing hook is not free) -- but rows must
stay byte-identical, the disabled path must stay free, and the merged
artifact must be a *standard* pstats file so the whole Python profiling
toolbox opens it.
"""

from __future__ import annotations

import json
import pstats

import pytest

from repro.runner.cli import main
from repro.telemetry import profile as profiling

CHURN_PARAMS = {"trials": 2, "cycles": 2, "files": 4}


@pytest.fixture(autouse=True)
def clean_profiling():
    profiling.reset()
    yield
    profiling.reset()


def busy(n: int) -> int:
    return sum(i * i for i in range(n))


class TestProfiledCall:
    def test_returns_result_and_stats(self):
        result, stats = profiling.profiled_call(busy, 100)
        assert result == busy(100)
        assert any(func[2] == "busy" for func in stats)
        # Each stats row is (cc, nc, tt, ct, callers).
        for cc, nc, tt, ct, callers in stats.values():
            assert cc <= nc or True  # shape check only
            assert isinstance(callers, dict)

    def test_disabled_by_default(self):
        assert not profiling.is_enabled()
        assert profiling.stats_buffer() == []


class TestMergeStats:
    def test_merging_sums_counts_and_times(self):
        _, first = profiling.profiled_call(busy, 1000)
        _, second = profiling.profiled_call(busy, 1000)
        merged = profiling.merge_stats([first, second])
        key = next(func for func in first if func[2] == "busy")
        assert merged[key][1] == first[key][1] + second[key][1]  # call counts
        assert merged[key][3] >= max(first[key][3], second[key][3])  # cumtime

    def test_merge_of_disjoint_tables_keeps_both(self):
        _, first = profiling.profiled_call(busy, 10)
        _, second = profiling.profiled_call(json.dumps, {"a": 1})
        merged = profiling.merge_stats([first, second])
        names = {func[2] for func in merged}
        assert "busy" in names
        assert len(merged) >= max(len(first), len(second))

    def test_merged_table_loads_as_pstats(self, tmp_path):
        _, first = profiling.profiled_call(busy, 1000)
        _, second = profiling.profiled_call(busy, 1000)
        path = profiling.write_pstats(
            tmp_path / "deep" / "profile.pstats",
            profiling.merge_stats([first, second]),
        )
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0  # type: ignore[attr-defined]
        assert any(func[2] == "busy" for func in stats.stats)  # type: ignore[attr-defined]

    def test_top_table_sorted_by_cumulative_time(self):
        _, stats = profiling.profiled_call(busy, 5000)
        rows = profiling.top_table(stats, limit=5)
        assert len(rows) <= 5
        cumtimes = [row["cumtime_ms"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)
        assert all("calls" in row and "function" in row for row in rows)


class TestCLI:
    def _run(self, tmp_path, extra=()):
        out_path = tmp_path / "churn.json"
        args = ["run", "churn", "--quiet", "--seed", "7"]
        for key, value in CHURN_PARAMS.items():
            args += ["--set", f"{key}={value}"]
        assert main(args + ["--out", str(out_path)] + list(extra)) == 0
        return out_path

    @pytest.mark.parametrize("workers", [1, 2])
    def test_profile_writes_loadable_pstats(self, tmp_path, capsys, workers):
        profile_dir = tmp_path / "prof"
        self._run(
            tmp_path,
            extra=["--profile", str(profile_dir), "--workers", str(workers)],
        )
        out = capsys.readouterr().out
        assert f"{CHURN_PARAMS['trials']} trial profiles merged" in out
        assert "top functions by cumulative time" in out
        stats = pstats.Stats(str(profile_dir / "profile.pstats"))
        functions = {func[2] for func in stats.stats}  # type: ignore[attr-defined]
        # The scenario's own trial function appears in the merged profile
        # even when executed inside forked pool workers.
        assert "run_churn_trial" in functions
        # Global recorder state is clean for the next command.
        assert not profiling.is_enabled()
        assert profiling.stats_buffer() == []

    def test_profiled_rows_match_plain_rows(self, tmp_path, capsys):
        profiled_path = self._run(tmp_path, extra=["--profile", str(tmp_path / "p")])
        profiled = json.loads(profiled_path.read_text())
        plain_path = tmp_path / "plain.json"
        args = ["run", "churn", "--quiet", "--seed", "7", "--out", str(plain_path)]
        for key, value in CHURN_PARAMS.items():
            args += ["--set", f"{key}={value}"]
        assert main(args) == 0
        plain = json.loads(plain_path.read_text())
        assert profiled["rows"] == plain["rows"]

    def test_profile_composes_with_trace_and_metrics(self, tmp_path, capsys):
        from repro import telemetry
        from repro.telemetry import metrics

        out_path = self._run(
            tmp_path,
            extra=[
                "--profile", str(tmp_path / "p"),
                "--trace", str(tmp_path / "trace.json"),
                "--metrics",
            ],
        )
        manifest = json.loads(out_path.read_text())
        assert manifest["telemetry"]["spans"]
        assert manifest["metrics"]["series"]
        assert (tmp_path / "p" / "profile.pstats").exists()
        assert not telemetry.is_enabled()
        assert not metrics.is_enabled()
        assert not profiling.is_enabled()
