"""Tests for the Kademlia-style DHT and the BitSwap exchange."""

import pytest

from repro.crypto.hashing import ContentId
from repro.storage.bitswap import BitSwapNetwork
from repro.storage.content_store import BlockNotFoundError, ContentStore
from repro.storage.dht import DHTNetwork, node_id_from_name, xor_distance


def build_dht(n_nodes: int) -> DHTNetwork:
    network = DHTNetwork()
    network.create_node("node-0")
    for index in range(1, n_nodes):
        network.create_node(f"node-{index}", bootstrap="node-0")
    return network


class TestDHTRouting:
    def test_node_ids_are_unique_and_stable(self):
        assert node_id_from_name("a") == node_id_from_name("a")
        assert node_id_from_name("a") != node_id_from_name("b")

    def test_xor_distance_properties(self):
        a, b = node_id_from_name("a"), node_id_from_name("b")
        assert xor_distance(a, a) == 0
        assert xor_distance(a, b) == xor_distance(b, a)

    def test_duplicate_node_rejected(self):
        network = DHTNetwork()
        network.create_node("x")
        with pytest.raises(ValueError):
            network.create_node("x")

    def test_provider_records_found_across_network(self):
        network = build_dht(12)
        cid = ContentId.of(b"the file")
        network.node("node-3").provide(cid)
        providers = network.node("node-9").find_providers(cid)
        assert "node-3" in providers

    def test_multiple_providers_all_discoverable(self):
        network = build_dht(10)
        cid = ContentId.of(b"shared file")
        for name in ("node-1", "node-4", "node-7"):
            network.node(name).provide(cid)
        found = network.node("node-2").find_providers(cid)
        assert {"node-1", "node-4", "node-7"} <= found

    def test_stop_providing_removes_record(self):
        network = build_dht(8)
        cid = ContentId.of(b"gone soon")
        network.node("node-2").provide(cid)
        network.node("node-2").stop_providing(cid)
        assert "node-2" not in network.node("node-5").find_providers(cid)

    def test_lookup_hops_scale_logarithmically(self):
        network = build_dht(30)
        node = network.node("node-15")
        node.iterative_find_node(node_id_from_name("target"))
        assert 1 <= node.lookup_hops <= 10

    def test_remove_node_cleans_routing(self):
        network = build_dht(6)
        network.remove_node("node-3")
        assert "node-3" not in network.names()
        cid = ContentId.of(b"x")
        network.node("node-1").provide(cid)
        assert "node-1" in network.node("node-2").find_providers(cid)


class TestBitSwap:
    def test_fetch_block_via_dht(self):
        dht = DHTNetwork()
        network = BitSwapNetwork(dht=dht)
        holder = network.create_peer("holder")
        network.create_peer("relay", bootstrap="holder")
        fetcher = network.create_peer("fetcher", bootstrap="holder")
        cid = holder.store.put(b"block data")
        holder.dht_node.provide(cid)
        assert fetcher.fetch_block(cid) == b"block data"
        assert fetcher.store.has(cid)

    def test_fetch_with_hint_peers_without_dht(self):
        network = BitSwapNetwork()
        holder = network.create_peer("holder", with_dht=False)
        fetcher = network.create_peer("fetcher", with_dht=False)
        cid = holder.store.put(b"hinted block")
        assert fetcher.fetch_block(cid, hint_peers=["holder"]) == b"hinted block"

    def test_missing_block_raises(self):
        network = BitSwapNetwork()
        network.create_peer("a", with_dht=False)
        fetcher = network.create_peer("b", with_dht=False)
        with pytest.raises(BlockNotFoundError):
            fetcher.fetch_block(ContentId.of(b"nope"), hint_peers=["a"])

    def test_selfish_peer_refuses_to_serve(self):
        network = BitSwapNetwork()
        selfish = network.create_peer("selfish", with_dht=False, serves_retrievals=False)
        fetcher = network.create_peer("fetcher", with_dht=False)
        cid = selfish.store.put(b"hoarded")
        with pytest.raises(BlockNotFoundError):
            fetcher.fetch_block(cid, hint_peers=["selfish"])

    def test_transfer_accounting(self):
        network = BitSwapNetwork()
        holder = network.create_peer("holder", with_dht=False)
        fetcher = network.create_peer("fetcher", with_dht=False)
        cid = holder.store.put(b"12345678")
        fetcher.fetch_block(cid, hint_peers=["holder"])
        assert holder.bytes_sent == 8
        assert fetcher.bytes_received == 8
        assert network.bytes_between("holder", "fetcher") == 8

    def test_local_block_not_refetched(self):
        network = BitSwapNetwork()
        peer = network.create_peer("solo", with_dht=False)
        cid = peer.store.put(b"mine")
        assert peer.fetch_block(cid) == b"mine"
        assert peer.bytes_received == 0

    def test_duplicate_peer_rejected(self):
        network = BitSwapNetwork()
        network.create_peer("dup", with_dht=False)
        with pytest.raises(ValueError):
            network.create_peer("dup", with_dht=False)
