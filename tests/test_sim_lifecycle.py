"""Lifecycle state machines and the event-driven deployment director.

The heart of this pack is the *exhaustive* transition-validity matrix:
every single ``(state, event)`` pair of both machines is parametrized and
asserts either the documented next state or a typed
:class:`InvalidTransitionError` -- no pair is left unasserted.  Around it
sit machine-semantics tests, event-generator determinism, the numpy
percentile oracle, the :class:`LifecycleSimulation` behaviour pack
(including the refresh-vs-degradation cancel race and cross-backend row
identity with every generator enabled) and the ``DSNScenario`` lifecycle
integration.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import telemetry
from repro.crypto.prng import DeterministicPRNG
from repro.sim.lifecycle import (
    FILE_TRANSITIONS,
    PROVIDER_TRANSITIONS,
    FileLifecycleEvent,
    FileLifecycleState,
    FileMachine,
    InvalidTransitionError,
    LifecycleConfig,
    LifecycleRegistry,
    LifecycleSimulation,
    ProviderLifecycleEvent,
    ProviderLifecycleState,
    ProviderMachine,
    flash_crowd_windows,
    poisson_times,
    zipf_weights,
)
from repro.sim.metrics import linear_percentile

# A lively config: failures, a departure, a regional failure and a flash
# crowd all fire inside a short horizon.
LIVELY = LifecycleConfig(
    providers=8,
    regions=2,
    files=12,
    replicas=3,
    horizon_s=250.0,
    mtbf_s=150.0,
    mttr_s=40.0,
    departures=1,
    retrieval_rate=0.6,
    flash_crowds=1,
    regional_failures=1,
    seed=13,
)


def lively(**overrides) -> LifecycleConfig:
    merged = dict(LIVELY.__dict__)
    merged.update(overrides)
    return LifecycleConfig(**merged)


# ----------------------------------------------------------------------
# Exhaustive transition-validity matrix (satellite: no pair unasserted)
# ----------------------------------------------------------------------
class TestFileTransitionMatrix:
    @pytest.mark.parametrize(
        "state,event",
        list(itertools.product(FileLifecycleState, FileLifecycleEvent)),
        ids=lambda value: value.value,
    )
    def test_every_pair_is_documented_or_rejected(self, state, event):
        machine = FileMachine("file", state=state)
        if (state, event) in FILE_TRANSITIONS:
            record = machine.apply(event, time=1.5)
            assert machine.state is FILE_TRANSITIONS[(state, event)]
            assert record.from_state is state
            assert record.to_state is machine.state
            assert record.time == 1.5
        else:
            with pytest.raises(InvalidTransitionError) as excinfo:
                machine.apply(event)
            assert machine.state is state  # rejected events do not move it
            assert machine.history == []
            assert excinfo.value.machine == "file"
            assert excinfo.value.state is state
            assert excinfo.value.event is event

    def test_expected_valid_pair_count(self):
        # 6 states x 7 events = 42 pairs, of which exactly 11 are legal.
        assert len(FILE_TRANSITIONS) == 11
        assert len(list(itertools.product(FileLifecycleState, FileLifecycleEvent))) == 42

    def test_lost_is_terminal_no_event_escapes(self):
        for event in FileLifecycleEvent:
            assert (FileLifecycleState.LOST, event) not in FILE_TRANSITIONS
        assert FileMachine("f", state=FileLifecycleState.LOST).is_terminal


class TestProviderTransitionMatrix:
    @pytest.mark.parametrize(
        "state,event",
        list(itertools.product(ProviderLifecycleState, ProviderLifecycleEvent)),
        ids=lambda value: value.value,
    )
    def test_every_pair_is_documented_or_rejected(self, state, event):
        machine = ProviderMachine("p", state=state)
        if (state, event) in PROVIDER_TRANSITIONS:
            machine.apply(event, time=2.0)
            assert machine.state is PROVIDER_TRANSITIONS[(state, event)]
        else:
            with pytest.raises(InvalidTransitionError):
                machine.apply(event)
            assert machine.state is state

    def test_expected_valid_pair_count(self):
        # 5 states x 4 events = 20 pairs, of which exactly 8 are legal.
        assert len(PROVIDER_TRANSITIONS) == 8
        assert (
            len(list(itertools.product(ProviderLifecycleState, ProviderLifecycleEvent)))
            == 20
        )

    def test_departed_is_terminal_and_crashed_cannot_depart(self):
        for event in ProviderLifecycleEvent:
            assert (ProviderLifecycleState.DEPARTED, event) not in PROVIDER_TRANSITIONS
        assert (
            ProviderLifecycleState.CRASHED,
            ProviderLifecycleEvent.DEPARTED,
        ) not in PROVIDER_TRANSITIONS


# ----------------------------------------------------------------------
# Machine semantics
# ----------------------------------------------------------------------
class TestMachineSemantics:
    def test_happy_path_history(self):
        machine = FileMachine(7)
        machine.apply(FileLifecycleEvent.PLACEMENT_CONFIRMED, time=1.0)
        machine.apply(FileLifecycleEvent.REPLICA_DEGRADED, time=2.0)
        machine.apply(FileLifecycleEvent.REFRESH_STARTED, time=3.0)
        machine.apply(FileLifecycleEvent.REFRESH_COMPLETED, time=4.0)
        assert machine.state is FileLifecycleState.REFRESHED
        assert [r.to_state for r in machine.history] == [
            FileLifecycleState.PLACED,
            FileLifecycleState.DEGRADED,
            FileLifecycleState.REFRESHING,
            FileLifecycleState.REFRESHED,
        ]
        assert [r.time for r in machine.history] == [1.0, 2.0, 3.0, 4.0]
        assert all(r.subject == 7 for r in machine.history)

    def test_history_chains_states_contiguously(self):
        machine = ProviderMachine("p")
        machine.apply(ProviderLifecycleEvent.ACTIVATED)
        machine.apply(ProviderLifecycleEvent.CRASHED)
        machine.apply(ProviderLifecycleEvent.RECOVERED)
        machine.apply(ProviderLifecycleEvent.ACTIVATED)
        for previous, current in zip(machine.history, machine.history[1:]):
            assert current.from_state is previous.to_state

    def test_peek_and_can_apply_do_not_mutate(self):
        machine = FileMachine("f")
        assert machine.can_apply(FileLifecycleEvent.PLACEMENT_CONFIRMED)
        assert not machine.can_apply(FileLifecycleEvent.REFRESH_COMPLETED)
        assert (
            machine.peek(FileLifecycleEvent.PLACEMENT_CONFIRMED)
            is FileLifecycleState.PLACED
        )
        assert machine.state is FileLifecycleState.PENDING
        assert machine.history == []

    def test_apply_if_valid_is_a_guarded_noop(self):
        machine = FileMachine("f", state=FileLifecycleState.LOST)
        assert machine.apply_if_valid(FileLifecycleEvent.REPLICA_DEGRADED) is None
        assert machine.history == []
        live = FileMachine("g", state=FileLifecycleState.PLACED)
        record = live.apply_if_valid(FileLifecycleEvent.REPLICA_DEGRADED, time=5.0)
        assert record is not None and record.to_state is FileLifecycleState.DEGRADED

    def test_valid_events_matches_table(self):
        assert set(FileMachine.valid_events(FileLifecycleState.REFRESHING)) == {
            FileLifecycleEvent.REPLICA_DEGRADED,
            FileLifecycleEvent.REFRESH_COMPLETED,
            FileLifecycleEvent.REFRESH_FAILED,
            FileLifecycleEvent.ALL_REPLICAS_LOST,
        }
        assert FileMachine.valid_events(FileLifecycleState.LOST) == []

    def test_error_message_names_machine_state_and_event(self):
        with pytest.raises(InvalidTransitionError, match="provider 'p9'.*'departed'"):
            ProviderMachine(
                "p9", state=ProviderLifecycleState.CRASHED
            ).apply(ProviderLifecycleEvent.DEPARTED)

    def test_transitions_emit_lifecycle_counters(self):
        telemetry.enable()
        try:
            with telemetry.capture() as events:
                machine = FileMachine("f")
                machine.apply(FileLifecycleEvent.PLACEMENT_CONFIRMED)
                machine.apply(FileLifecycleEvent.REPLICA_DEGRADED)
            names = [e["name"] for e in events]
            assert names == [
                "lifecycle.file.placement_confirmed",
                "lifecycle.file.replica_degraded",
            ]
            assert all(e["cat"] == "lifecycle" and e["ph"] == "C" for e in events)
        finally:
            telemetry.disable()
            telemetry.drain()


class TestRegistry:
    def test_machines_are_created_once_and_counted(self):
        registry = LifecycleRegistry()
        registry.file(1).apply(FileLifecycleEvent.PLACEMENT_CONFIRMED)
        registry.file(1).apply(FileLifecycleEvent.REPLICA_DEGRADED)
        registry.provider("p").apply(ProviderLifecycleEvent.ACTIVATED)
        assert registry.file(1) is registry.files[1]
        assert registry.transition_counts() == {
            "file.placement_confirmed": 1,
            "file.replica_degraded": 1,
            "provider.activated": 1,
        }
        assert registry.state_counts() == {
            "file.degraded": 1,
            "provider.active": 1,
        }


# ----------------------------------------------------------------------
# Event generators
# ----------------------------------------------------------------------
class TestEventGenerators:
    def test_poisson_times_deterministic_ordered_and_bounded(self):
        a = poisson_times(DeterministicPRNG.from_int(3, domain="t"), 2.0, 50.0)
        b = poisson_times(DeterministicPRNG.from_int(3, domain="t"), 2.0, 50.0)
        assert a == b
        assert a == sorted(a)
        assert all(0.0 < t <= 50.0 for t in a)
        # Rate 2/s over 50s: ~100 arrivals; a 3x band is a safe regression.
        assert 30 < len(a) < 300

    def test_poisson_times_edge_cases(self):
        prng = DeterministicPRNG.from_int(0, domain="t")
        assert poisson_times(prng, 0.0, 10.0) == []
        assert poisson_times(prng, 1.0, 0.0) == []

    def test_flash_crowd_windows_fit_horizon(self):
        windows = flash_crowd_windows(
            DeterministicPRNG.from_int(5, domain="t"), 3, 10.0, 100.0
        )
        assert len(windows) == 3
        assert windows == sorted(windows)
        for start, end in windows:
            assert 0.0 <= start < end <= 100.0
            assert end - start == pytest.approx(10.0)

    def test_zipf_weights_integer_one_over_rank(self):
        weights = zipf_weights(8)
        assert weights[0] == 720_720
        assert weights[1] == 720_720 // 2
        assert weights == sorted(weights, reverse=True)
        assert all(isinstance(w, int) and w >= 1 for w in weights)


# ----------------------------------------------------------------------
# Percentiles: the numpy oracle (satellite)
# ----------------------------------------------------------------------
class TestLinearPercentile:
    HAND_STREAM = [0.31, 0.05, 1.7, 0.42, 0.08, 0.9, 0.27, 0.61, 0.05, 2.4, 0.33]

    @pytest.mark.parametrize("q", [0.0, 25.0, 50.0, 90.0, 99.0, 100.0])
    def test_matches_numpy_on_hand_built_latency_stream(self, q):
        assert linear_percentile(self.HAND_STREAM, q) == pytest.approx(
            float(np.percentile(self.HAND_STREAM, q)), rel=0, abs=1e-12
        )

    def test_matches_numpy_on_generated_streams(self):
        prng = DeterministicPRNG.from_int(9, domain="pct")
        for size in (1, 2, 3, 10, 101):
            stream = [prng.random() * 5.0 for _ in range(size)]
            for q in (50.0, 95.0, 99.0):
                assert linear_percentile(stream, q) == pytest.approx(
                    float(np.percentile(stream, q)), rel=0, abs=1e-12
                )

    def test_empty_stream_and_bounds(self):
        assert linear_percentile([], 99.0) == 0.0
        with pytest.raises(ValueError):
            linear_percentile([1.0], 101.0)

    def test_simulation_percentiles_match_numpy(self):
        sim = LifecycleSimulation(lively())
        sim.run()
        assert len(sim.latencies) > 50
        assert sim.summary()["latency_p50_s"] == round(
            float(np.percentile(sim.latencies, 50.0)), 5
        )
        assert sim.summary()["latency_p99_s"] == round(
            float(np.percentile(sim.latencies, 99.0)), 5
        )


# ----------------------------------------------------------------------
# The event-driven director
# ----------------------------------------------------------------------
class TestLifecycleSimulation:
    def test_generators_all_fire_and_books_balance(self):
        sim = LifecycleSimulation(lively())
        row = sim.run()
        assert row["provider_crashes"] > 0
        assert row["provider_recoveries"] > 0
        assert row["provider_departures"] == 1
        assert row["regional_failures"] == 1
        assert row["flash_retrievals"] > 0
        assert row["served"] + row["unserved"] == row["retrievals"]
        assert row["files_placed"] + row["placement_failures"] == row["files"]
        assert row["min_free_slots"] >= 0

    def test_refresh_races_cancel_degradation_deadlines(self):
        row = LifecycleSimulation(lively()).run()
        assert row["refreshes_completed"] > 0
        assert row["refreshes_beat_deadline"] > 0
        assert row["events_cancelled"] >= row["refreshes_beat_deadline"]

    def test_rows_identical_across_backends(self):
        rows = {
            backend: LifecycleSimulation(lively(backend=backend)).run()
            for backend in ("reference", "vectorized")
        }
        assert rows["reference"] == rows["vectorized"]

    def test_deterministic_in_seed_and_sensitive_to_it(self):
        first = LifecycleSimulation(lively()).run()
        second = LifecycleSimulation(lively()).run()
        assert first == second
        assert LifecycleSimulation(lively(seed=12)).run() != first

    def test_quiet_world_loses_nothing(self):
        row = LifecycleSimulation(
            lively(
                mtbf_s=1e9, departures=0, regional_failures=0, flash_crowds=0
            )
        ).run()
        assert row["provider_crashes"] == 0
        assert row["files_lost"] == 0
        # Refreshes may still fire to top up placement-collision shortfalls,
        # but none of them can fail with every provider healthy.
        assert row["refresh_failures"] == 0
        assert row["miss_rate"] <= 1.0

    def test_machine_histories_are_valid_chains(self):
        sim = LifecycleSimulation(lively())
        sim.run()
        for machine in list(sim.registry.files.values()) + list(
            sim.registry.providers.values()
        ):
            table = machine.TRANSITIONS
            for previous, current in zip(machine.history, machine.history[1:]):
                assert current.from_state is previous.to_state
                assert current.time >= previous.time
            for record in machine.history:
                assert table[(record.from_state, record.event)] is record.to_state

    def test_lost_files_never_transition_again(self):
        sim = LifecycleSimulation(lively(mtbf_s=60.0, degrade_timeout_s=30.0))
        sim.run()
        lost = [
            m
            for m in sim.registry.files.values()
            if m.state is FileLifecycleState.LOST
        ]
        assert lost, "this shape is violent enough to lose at least one file"
        for machine in lost:
            assert machine.history[-1].to_state is FileLifecycleState.LOST
            assert (
                sum(1 for r in machine.history if r.to_state is FileLifecycleState.LOST)
                == 1
            )

    def test_traced_run_records_lifecycle_counters_and_stays_inert(self):
        plain = LifecycleSimulation(lively()).run()
        telemetry.enable()
        try:
            with telemetry.capture() as events:
                traced = LifecycleSimulation(lively()).run()
        finally:
            telemetry.disable()
            telemetry.drain()
        assert traced == plain  # telemetry never touches the seeded RNG
        lifecycle_events = [e for e in events if e["cat"] == "lifecycle"]
        assert lifecycle_events, "traced run must carry lifecycle counters"
        names = {e["name"] for e in lifecycle_events}
        assert "lifecycle.provider.crashed" in names
        assert "lifecycle.file.placement_confirmed" in names

    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError):
            LifecycleSimulation(lively(providers=0))
        with pytest.raises(ValueError):
            LifecycleSimulation(lively(replicas=0))


# ----------------------------------------------------------------------
# DSNScenario integration: the wired deployment keeps a lifecycle audit
# ----------------------------------------------------------------------
class TestScenarioLifecycleIntegration:
    @pytest.fixture()
    def deployment(self):
        from repro.sim.scenario import DSNScenario, ScenarioConfig

        return DSNScenario(ScenarioConfig(provider_count=4, seed=13))

    def test_providers_activate_on_build(self, deployment):
        states = deployment.lifecycle.state_counts()
        assert states["provider.active"] == 4

    def test_settled_upload_places_the_file(self, deployment):
        file_id = deployment.store_file("client-0", "a", b"x" * 2048, value=2)
        assert (
            deployment.lifecycle.file(file_id).state is FileLifecycleState.PENDING
        )
        deployment.settle_uploads()
        assert deployment.lifecycle.file(file_id).state is FileLifecycleState.PLACED

    def test_crash_degrades_hosted_files_and_refresh_completes(self, deployment):
        file_id = deployment.store_file("client-0", "a", b"x" * 2048, value=2)
        deployment.settle_uploads()
        victim = next(
            sector_id
            for sector_id in deployment.protocol.file_locations(file_id)
            if sector_id is not None
        )
        owner, _ = deployment.sector_map[victim]
        deployment.crash_provider(owner, immediate_detection=True)
        deployment.run_cycles(3)
        machine = deployment.lifecycle.file(file_id)
        counts = deployment.lifecycle.transition_counts()
        assert counts.get("file.replica_degraded", 0) >= 1
        assert machine.state in (
            FileLifecycleState.REFRESHED,
            FileLifecycleState.DEGRADED,
        )
        provider_machine = deployment.lifecycle.provider(owner)
        assert provider_machine.state is ProviderLifecycleState.CRASHED
        summary = deployment.summary()
        assert summary["lifecycle_transitions"] >= 3.0

    def test_summary_exposes_lifecycle_metrics(self, deployment):
        summary = deployment.summary()
        assert {"lifecycle_transitions", "lifecycle_refreshes", "lifecycle_files_lost"} <= set(
            summary
        )
