"""Tests for the insurance fund and the fee engine."""

import pytest

from repro.chain.ledger import InsufficientFundsError, Ledger
from repro.core.deposit import CompensationShortfallError, InsuranceFund
from repro.core.fees import FeeEngine, RentAccounting
from repro.core.params import ProtocolParams


@pytest.fixture
def fund(ledger):
    return InsuranceFund(ledger)


class TestInsuranceFund:
    def test_pledge_locks_deposit(self, ledger, fund):
        ledger.mint("prov", 1000)
        fund.pledge("s0", "prov", 400)
        assert ledger.balance("prov") == 600
        assert ledger.escrowed("prov") == 400
        assert fund.deposit_of("s0") == 400
        assert fund.active_deposit_total() == 400

    def test_double_pledge_rejected(self, ledger, fund):
        ledger.mint("prov", 1000)
        fund.pledge("s0", "prov", 100)
        with pytest.raises(ValueError):
            fund.pledge("s0", "prov", 100)

    def test_pledge_without_funds_fails(self, ledger, fund):
        ledger.mint("prov", 10)
        with pytest.raises(InsufficientFundsError):
            fund.pledge("s0", "prov", 100)

    def test_refund_returns_deposit(self, ledger, fund):
        ledger.mint("prov", 500)
        fund.pledge("s0", "prov", 500)
        assert fund.refund("s0") == 500
        assert ledger.balance("prov") == 500
        assert fund.deposit_of("s0") == 0

    def test_confiscate_moves_to_pool(self, ledger, fund):
        ledger.mint("prov", 500)
        fund.pledge("s0", "prov", 500)
        fund.confiscate("s0")
        assert fund.pool_balance == 500
        assert ledger.escrowed("prov") == 0

    def test_refund_after_confiscate_rejected(self, ledger, fund):
        ledger.mint("prov", 500)
        fund.pledge("s0", "prov", 500)
        fund.confiscate("s0")
        with pytest.raises(KeyError):
            fund.refund("s0")

    def test_full_compensation_from_pool(self, ledger, fund):
        ledger.mint("prov", 500)
        fund.pledge("s0", "prov", 500)
        fund.confiscate("s0")
        paid = fund.compensate("client", 300)
        assert paid == 300
        assert ledger.balance("client") == 300
        assert fund.pool_balance == 200

    def test_shortfall_pays_partially_and_raises(self, ledger, fund):
        ledger.mint("prov", 100)
        fund.pledge("s0", "prov", 100)
        fund.confiscate("s0")
        with pytest.raises(CompensationShortfallError):
            fund.compensate("client", 250)
        assert ledger.balance("client") == 100
        assert fund.shortfall_events == 1

    def test_deposit_ratio(self, ledger, fund):
        ledger.mint("prov", 1000)
        fund.pledge("s0", "prov", 50)
        assert fund.deposit_ratio(10_000) == pytest.approx(0.005)
        assert fund.deposit_ratio(0) == 0.0

    def test_summary_keys(self, ledger, fund):
        summary = fund.summary()
        assert {"total_pledged", "total_confiscated", "pool_balance"} <= set(summary)


class TestRentAccounting:
    def test_charge_and_distribute_by_capacity(self, ledger, params):
        rent = RentAccounting(ledger, params)
        ledger.mint("client", 1000)
        rent.charge("client", 300)
        payout = rent.distribute([("s0", "provA", 100), ("s1", "provB", 200)])
        assert payout["provA"] == 100
        assert payout["provB"] == 200
        assert ledger.balance("provA") == 100
        assert ledger.balance("provB") == 200

    def test_distribute_with_no_healthy_sectors_keeps_pot(self, ledger, params):
        rent = RentAccounting(ledger, params)
        ledger.mint("client", 100)
        rent.charge("client", 100)
        payout = rent.distribute([])
        assert payout == {}
        assert rent.collected_this_period == 0  # reset even when nothing paid

    def test_rounding_residue_stays_in_pool(self, ledger, params):
        rent = RentAccounting(ledger, params)
        ledger.mint("client", 10)
        rent.charge("client", 10)
        payout = rent.distribute([("s0", "a", 3), ("s1", "b", 3), ("s2", "c", 3)])
        assert sum(payout.values()) <= 10

    def test_can_afford(self, ledger, params):
        rent = RentAccounting(ledger, params)
        ledger.mint("client", 10)
        assert rent.can_afford("client", 10)
        assert not rent.can_afford("client", 11)


class TestFeeEngine:
    def test_gas_fee_goes_to_network(self, ledger, params):
        engine = FeeEngine(ledger, params)
        ledger.mint("client", 10_000)
        fee = engine.charge_gas("client", "file_add")
        assert fee > 0
        assert ledger.balance(Ledger.NETWORK_ADDRESS) == fee

    def test_cycle_cost_includes_rent_and_gas(self, ledger, params):
        engine = FeeEngine(ledger, params)
        cost = engine.cycle_cost(size=1000, replica_count=3)
        assert cost >= params.rent_for_cycle(1000, 3)

    def test_charge_cycle_moves_funds(self, ledger, params):
        engine = FeeEngine(ledger, params)
        ledger.mint("client", 1_000_000)
        charged = engine.charge_cycle("client", 1000, 3)
        assert charged == engine.cycle_cost(1000, 3)
        assert ledger.balance("client") == 1_000_000 - charged

    def test_can_afford_cycle(self, ledger, params):
        engine = FeeEngine(ledger, params)
        ledger.mint("poor", 0 + 1)
        assert not engine.can_afford_cycle("poor", 10**6, 10)

    def test_traffic_fee_escrow_release(self, ledger, params):
        engine = FeeEngine(ledger, params)
        ledger.mint("client", 10_000)
        escrow = engine.commit_traffic_fee("client", "prov", 1000)
        assert ledger.escrowed("client") == escrow.amount
        engine.release_traffic_fee(escrow)
        assert ledger.balance("prov") == escrow.amount
        assert ledger.escrowed("client") == 0
        # releasing twice is a no-op
        engine.release_traffic_fee(escrow)
        assert ledger.balance("prov") == escrow.amount

    def test_traffic_fee_refund(self, ledger, params):
        engine = FeeEngine(ledger, params)
        ledger.mint("client", 10_000)
        escrow = engine.commit_traffic_fee("client", "prov", 1000)
        engine.refund_traffic_fee(escrow)
        assert ledger.balance("client") == 10_000
        assert ledger.balance("prov") == 0

    def test_summary_keys(self, ledger, params):
        engine = FeeEngine(ledger, params)
        assert {"total_traffic_fees", "total_gas_fees", "rent_collected"} <= set(engine.summary())
