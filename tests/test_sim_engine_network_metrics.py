"""Tests for the simulation engine, network model and metrics."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, format_table
from repro.sim.network import LatencyModel, SimulatedNetwork


class TestSimulationEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 3.0
        assert engine.events_processed == 3

    def test_priority_breaks_ties(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda: order.append("low"), priority=5)
        engine.schedule(1.0, lambda: order.append("high"), priority=1)
        engine.run()
        assert order == ["high", "low"]

    def test_run_until_stops_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_count() == 1

    def test_events_can_schedule_more_events(self):
        engine = SimulationEngine()
        fired = []

        def chain():
            fired.append(len(fired))
            if len(fired) < 5:
                engine.schedule(1.0, chain)

        engine.schedule(1.0, chain)
        engine.run()
        assert len(fired) == 5

    def test_stop_halts_processing(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_max_events_cap(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i), lambda: None)
        assert engine.run(max_events=4) == 4

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_same_time_events_pop_in_priority_then_insertion_order(self):
        """Regression: equal timestamps resolve by (priority, insertion),
        and lazy cancellation never perturbs that order."""
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda: order.append("p1-first"), priority=1)
        doomed = engine.schedule(1.0, lambda: order.append("doomed"), priority=0)
        engine.schedule(1.0, lambda: order.append("p0-second"), priority=0)
        engine.schedule(1.0, lambda: order.append("p1-second"), priority=1)
        engine.schedule(1.0, lambda: order.append("p0-third"), priority=0)
        assert engine.cancel(doomed)
        engine.run()
        assert order == ["p0-second", "p0-third", "p1-first", "p1-second"]

    def test_cancel_prevents_callback_and_is_idempotent(self):
        engine = SimulationEngine()
        fired = []
        keep = engine.schedule(1.0, lambda: fired.append("keep"))
        drop = engine.schedule(2.0, lambda: fired.append("drop"))
        assert engine.cancel(drop) is True
        assert engine.cancel(drop) is False  # already cancelled
        assert engine.pending_count() == 1
        engine.run()
        assert fired == ["keep"]
        assert engine.events_processed == 1
        assert engine.events_cancelled == 1
        assert engine.cancel(keep) is False  # already ran

    def test_cancelled_event_does_not_advance_clock(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        late = engine.schedule(9.0, lambda: fired.append(9))
        engine.cancel(late)
        engine.run()
        assert fired == [1]
        assert engine.now == 1.0
        assert engine.next_event_time() is None

    def test_cancel_head_then_step_runs_next_live_event(self):
        engine = SimulationEngine()
        fired = []
        head = engine.schedule(1.0, lambda: fired.append("head"))
        engine.schedule(2.0, lambda: fired.append("tail"))
        engine.cancel(head)
        event = engine.step()
        assert event is not None and event.time == 2.0
        assert fired == ["tail"]

    def test_run_until_with_only_cancelled_events_left(self):
        engine = SimulationEngine()
        event = engine.schedule(3.0, lambda: None)
        engine.cancel(event)
        assert engine.run(until=5.0) == 0
        assert engine.now == 5.0
        assert engine.pending_count() == 0


class TestNetwork:
    def test_transfer_time_scales_with_size(self):
        latency = LatencyModel(base_latency_s=0.1, bandwidth_bytes_per_s=1000, jitter_fraction=0)
        assert latency.transfer_time(1000) == pytest.approx(1.1)
        assert latency.transfer_time(0) == pytest.approx(0.1)

    def test_transfer_records_and_counters(self):
        network = SimulatedNetwork(LatencyModel(jitter_fraction=0))
        message = network.transfer("a", "b", 500, now=1.0)
        assert message is not None
        assert message.delivered_at > 1.0
        assert network.bytes_sent["a"] == 500
        assert network.bytes_received["b"] == 500
        assert network.total_bytes_transferred() == 500

    def test_offline_nodes_fail_transfers(self):
        network = SimulatedNetwork()
        network.set_offline("b")
        assert network.transfer("a", "b", 100, now=0.0) is None
        network.set_offline("b", offline=False)
        assert network.transfer("a", "b", 100, now=0.0) is not None

    def test_meets_deadline(self):
        network = SimulatedNetwork(LatencyModel(base_latency_s=1.0, jitter_fraction=0))
        message = network.transfer("a", "b", 0, now=0.0)
        assert network.meets_deadline(message, deadline=2.0)
        assert not network.meets_deadline(message, deadline=0.5)
        assert not network.meets_deadline(None, deadline=10.0)

    def test_traffic_summary(self):
        network = SimulatedNetwork()
        network.transfer("a", "b", 10, now=0.0)
        network.transfer("b", "a", 20, now=0.0)
        summary = network.traffic_summary()
        assert summary["a"] == (10, 20)
        assert summary["b"] == (20, 10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().transfer_time(-1)


class TestMetrics:
    def test_series_statistics(self):
        collector = MetricsCollector()
        for i, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            collector.record("usage", float(i), value)
        series = collector.series("usage")
        assert series.count() == 4
        assert series.mean() == pytest.approx(2.5)
        assert series.maximum() == 4.0
        assert series.minimum() == 1.0
        assert series.stddev() == pytest.approx(1.118, rel=0.01)
        assert series.percentile(50) == 2.0
        assert series.percentile(100) == 4.0

    def test_empty_series_statistics(self):
        collector = MetricsCollector()
        series = collector.series("empty")
        assert series.mean() == 0.0
        assert series.maximum() == 0.0
        assert series.stddev() == 0.0

    def test_percentile_bounds(self):
        collector = MetricsCollector()
        collector.record("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            collector.series("x").percentile(101)

    def test_summary_contains_all_series(self):
        collector = MetricsCollector()
        collector.record("a", 0.0, 1.0)
        collector.record("b", 0.0, 2.0)
        assert set(collector.summary()) == {"a", "b"}
        assert collector.names() == ["a", "b"]

    def test_format_table(self):
        rows = [{"x": 1, "y": "abc"}, {"x": 22, "y": "d"}]
        text = format_table(rows)
        assert "x" in text and "abc" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
