"""Tests for the baseline DSN models and the Table IV comparison harness."""

import pytest

from repro.baselines.arweave import ArweaveModel
from repro.baselines.comparison import ComparisonHarness
from repro.baselines.filecoin import FilecoinModel
from repro.baselines.fileinsurer_model import FileInsurerModel
from repro.baselines.sia import SiaModel
from repro.baselines.storj import StorjModel
from repro.experiments.table4 import paper_expectations


def load(model, n_files=200, size=1.0, value=1.0):
    for _ in range(n_files):
        model.store_file(size, value)
    return model


class TestFileInsurerModel:
    def test_replica_count_scales_with_value(self):
        model = FileInsurerModel(50, 1000.0, k=5)
        low = model.store_file(1.0, 1.0)
        high = model.store_file(1.0, 3.0)
        assert len(low.placements) == 5
        assert len(high.placements) == 15

    def test_full_compensation_flag_and_amount(self):
        model = load(FileInsurerModel(50, 1000.0, k=5))
        model.corrupt_fraction(1.0)
        report = model.report()
        assert model.full_compensation
        assert report.compensation_ratio == pytest.approx(1.0)

    def test_random_placement_spreads_load(self):
        model = load(FileInsurerModel(100, 10_000.0, k=5), n_files=500)
        assert model.max_capacity_usage() < 1.0

    def test_survives_moderate_targeted_corruption(self):
        model = load(FileInsurerModel(100, 10_000.0, k=8), n_files=300)
        model.corrupt_fraction(0.3, targeted=True)
        assert model.report().value_loss_ratio < 0.05


class TestFilecoinModel:
    def test_deal_placement_confined_to_preferred_pool(self):
        model = load(FilecoinModel(100, 10_000.0))
        used_sectors = {s for f in model.files for s in f.placements}
        assert used_sectors <= set(model.preferred_pool)

    def test_targeted_attack_on_pool_is_catastrophic(self):
        model = load(FilecoinModel(100, 10_000.0, preferred_pool_fraction=0.2))
        model.corrupt_fraction(0.3, targeted=True)
        assert model.report().value_loss_ratio > 0.5

    def test_compensation_is_limited(self):
        model = load(FilecoinModel(100, 10_000.0))
        model.corrupt_fraction(1.0)
        report = model.report()
        assert 0 < report.compensation_ratio < 0.5
        assert not model.full_compensation


class TestStorjModel:
    def test_erasure_tolerates_partial_shard_loss(self):
        model = StorjModel(40, 1000.0, data_shards=4, total_shards=8)
        stored = model.store_file(4.0, 1.0)
        # Lose up to (total - data) shards: file still recoverable.
        model.corrupt_sectors(stored.placements[:4])
        assert not model.file_is_lost(stored)
        model.corrupt_sectors(stored.placements[4:5])
        assert model.file_is_lost(stored)

    def test_shard_size_is_fraction_of_file(self):
        model = StorjModel(40, 1000.0, data_shards=4, total_shards=8)
        model.store_file(8.0, 1.0)
        assert model.used.sum() == pytest.approx(8.0 / 4 * 8)

    def test_no_compensation(self):
        model = load(StorjModel(40, 1000.0))
        model.corrupt_fraction(1.0)
        assert model.report().compensation_paid == 0.0


class TestSiaModel:
    def test_sybil_identities_collapse_together(self):
        model = SiaModel(50, 1000.0, hosts_per_contract=3, sybil_collusion_fraction=0.3, seed=5)
        stored = [model.store_file(1.0, 1.0) for _ in range(100)]
        # Corrupt a single sybil identity: every file whose surviving copies
        # were all on sybil identities is gone.
        sybil = next(iter(model.sybil_group))
        model.corrupt_sectors([sybil])
        lost_with_sybil = len(model.lost_files())
        # Same corruption in a sybil-free deployment loses nothing (3 replicas).
        clean = SiaModel(50, 1000.0, hosts_per_contract=3, sybil_collusion_fraction=0.0, seed=5)
        for _ in range(100):
            clean.store_file(1.0, 1.0)
        clean.corrupt_sectors([sybil])
        assert len(clean.lost_files()) <= lost_with_sybil

    def test_not_sybil_resistant_flag(self):
        assert not SiaModel(10, 100.0).prevents_sybil_attacks

    def test_no_compensation(self):
        model = load(SiaModel(50, 1000.0))
        model.corrupt_fraction(1.0)
        assert model.report().compensation_paid == 0.0


class TestArweaveModel:
    def test_wide_replication(self):
        model = ArweaveModel(100, 100_000.0, replication_fraction=0.2)
        stored = model.store_file(1.0, 1.0)
        assert len(stored.placements) == 20

    def test_survives_random_corruption_below_replication(self):
        model = load(ArweaveModel(100, 100_000.0, replication_fraction=0.2), n_files=100)
        model.corrupt_fraction(0.5)
        assert model.report().lost_files == 0

    def test_no_compensation_flag(self):
        assert not ArweaveModel(10, 100.0).full_compensation


class TestBaselineCommon:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FileInsurerModel(0, 100.0)
        with pytest.raises(ValueError):
            StorjModel(10, 100.0, data_shards=5, total_shards=4)

    def test_invalid_file_rejected(self):
        model = FileInsurerModel(10, 100.0)
        with pytest.raises(ValueError):
            model.store_file(0, 1.0)

    def test_corrupt_sector_out_of_range(self):
        model = FileInsurerModel(10, 100.0)
        with pytest.raises(IndexError):
            model.corrupt_sectors([10])

    def test_corrupt_fraction_bounds(self):
        model = FileInsurerModel(10, 100.0)
        with pytest.raises(ValueError):
            model.corrupt_fraction(1.5)


class TestComparisonHarness:
    def test_table_matches_paper_yes_no_entries(self):
        harness = ComparisonHarness(n_sectors=100, n_files=200, corruption_fraction=0.3, seed=1)
        results = {r.protocol: r for r in harness.run()}
        for protocol, expected in paper_expectations().items():
            ours = results[protocol]
            assert ours.capacity_scalability == expected["capacity_scalability"], protocol
            assert ours.prevents_sybil_attacks == expected["prevents_sybil_attacks"], protocol
            assert ours.provable_robustness == expected["provable_robustness"], protocol
            assert ours.compensation_for_loss == expected["compensation_for_loss"], protocol

    def test_fileinsurer_lowest_targeted_loss(self):
        harness = ComparisonHarness(n_sectors=100, n_files=200, corruption_fraction=0.3, seed=2)
        results = {r.protocol: r for r in harness.run(["FileInsurer", "Filecoin", "Sia"])}
        assert results["FileInsurer"].loss_ratio_targeted <= results["Filecoin"].loss_ratio_targeted
        assert results["FileInsurer"].loss_ratio_targeted <= results["Sia"].loss_ratio_targeted

    def test_table_output_formatted(self):
        harness = ComparisonHarness(n_sectors=60, n_files=100, seed=3)
        table = harness.table(["FileInsurer", "Storj"])
        assert "FileInsurer" in table and "Storj" in table
