"""Tests for the content store and Merkle DAG."""

import pytest

from repro.crypto.hashing import ContentId
from repro.storage.content_store import BlockNotFoundError, ContentStore
from repro.storage.dag import DagNode, MerkleDag


class TestContentStore:
    def test_put_get_roundtrip(self):
        store = ContentStore()
        cid = store.put(b"hello")
        assert store.get(cid) == b"hello"
        assert store.has(cid)
        assert cid in store

    def test_get_missing_raises(self):
        store = ContentStore()
        with pytest.raises(BlockNotFoundError):
            store.get(ContentId.of(b"missing"))

    def test_put_verified_checks_hash(self):
        store = ContentStore()
        cid = ContentId.of(b"real")
        with pytest.raises(ValueError):
            store.put_verified(cid, b"fake")
        store.put_verified(cid, b"real")
        assert store.get(cid) == b"real"

    def test_delete(self):
        store = ContentStore()
        cid = store.put(b"x")
        assert store.delete(cid)
        assert not store.delete(cid)
        assert not store.has(cid)

    def test_size_and_len(self):
        store = ContentStore()
        store.put(b"aaa")
        store.put(b"bb")
        assert len(store) == 2
        assert store.size_bytes() == 5

    def test_idempotent_put(self):
        store = ContentStore()
        c1 = store.put(b"same")
        c2 = store.put(b"same")
        assert c1 == c2
        assert len(store) == 1


class TestMerkleDag:
    def test_roundtrip_small_file(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=16)
        data = b"tiny"
        root = dag.add_file(data)
        assert dag.read_file(root) == data

    def test_roundtrip_multi_level(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=8, fanout=2)
        data = bytes(range(200)) * 3
        root = dag.add_file(data)
        assert dag.read_file(root) == data

    def test_empty_file(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=8)
        root = dag.add_file(b"")
        assert dag.read_file(root) == b""
        assert dag.file_size(root) == 0

    def test_file_size_recorded(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=8)
        data = b"x" * 100
        root = dag.add_file(data)
        assert dag.file_size(root) == 100

    def test_same_content_same_root(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=8)
        assert dag.add_file(b"abc" * 10) == dag.add_file(b"abc" * 10)

    def test_different_content_different_root(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=8)
        assert dag.add_file(b"abc" * 10) != dag.add_file(b"abd" * 10)

    def test_collect_cids_covers_all_chunks(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=10, fanout=2)
        data = b"y" * 95
        root = dag.add_file(data)
        cids = dag.collect_cids(root)
        assert root in cids
        assert len(cids) >= 10  # leaves plus internal nodes

    def test_verify_detects_missing_chunk(self):
        store = ContentStore()
        dag = MerkleDag(store, chunk_size=10, fanout=2)
        root = dag.add_file(b"z" * 50)
        assert dag.verify(root)
        leaf = dag.collect_cids(root)[-1]
        store.delete(leaf)
        assert not dag.verify(root)

    def test_dag_node_encode_decode(self):
        children = (ContentId.of(b"a"), ContentId.of(b"b"))
        node = DagNode(children=children, total_size=123)
        decoded = DagNode.decode(node.encode())
        assert decoded.children == children
        assert decoded.total_size == 123

    def test_invalid_parameters(self):
        store = ContentStore()
        with pytest.raises(ValueError):
            MerkleDag(store, chunk_size=0)
        with pytest.raises(ValueError):
            MerkleDag(store, fanout=1)
