"""Tests for the experiment drivers (scaled-down runs of every table/figure)."""

import pytest

from repro.experiments import collision, deposit, robustness, scalability, table3, table4
from repro.sim.workload import FileSizeDistribution


class TestTable3Driver:
    def test_rows_pivot_by_grid_cell(self):
        results = table3.run_table3(
            mode="reallocate",
            grid=[(2000, 10), (5000, 10)],
            distributions=[FileSizeDistribution.UNIFORM_0_1, FileSizeDistribution.EXPONENTIAL],
            rounds=3,
        )
        rows = table3.rows_to_table(results)
        assert len(rows) == 2
        assert {"Ncp", "Ns", "[1]", "[3]"} <= set(rows[0])

    def test_all_usages_below_paper_threshold(self):
        results = table3.run_table3(
            mode="reallocate", grid=[(20_000, 20)], rounds=10
        )
        assert all(result.max_usage < table3.PAPER_MAX_USAGE for result in results)

    def test_refresh_mode_runs(self):
        results = table3.run_table3(
            mode="refresh",
            grid=[(5000, 10)],
            distributions=[FileSizeDistribution.UNIFORM_1_2],
            refresh_multiplier=3,
        )
        assert results[0].mode == "refresh"
        assert results[0].max_usage < 1.0

    def test_grids_have_paper_ratios(self):
        for n_backups, n_sectors in table3.default_grid():
            assert n_backups // n_sectors in (1000, 5000)
        assert len(table3.paper_grid()) == 8


class TestTable4Driver:
    def test_results_cover_all_protocols(self):
        results = table4.run_table4(n_sectors=80, n_files=150, seed=4)
        assert {r.protocol for r in results} == set(table4.paper_expectations())

    def test_yes_no_matches_paper(self):
        results = table4.run_table4(n_sectors=80, n_files=150, seed=4)
        expected = table4.paper_expectations()
        for result in results:
            assert result.provable_robustness == expected[result.protocol]["provable_robustness"]
            assert (
                result.compensation_for_loss
                == expected[result.protocol]["compensation_for_loss"]
            )


class TestCollisionDriver:
    def test_bound_sweep_monotone_decreasing(self):
        rows = collision.run_bound_sweep(ns=1e6, ratios=(10, 100, 1000))
        bounds = [float(row["theorem2_bound"]) for row in rows]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_monte_carlo_respects_bound_at_loose_ratios(self):
        # At small capacity/size ratios the bound exceeds 1 and holds trivially;
        # at larger ratios the event becomes so rare that a finite-trial
        # estimate is dominated by sampling noise, so only the loose ratios
        # are asserted exactly and the tight one is checked to be rare.
        rows = collision.run_monte_carlo(ratios=(16, 32), n_sectors=100, trials=40)
        assert all(row["bound_holds"] for row in rows)
        tight = collision.run_monte_carlo(ratios=(64,), n_sectors=100, trials=40)[0]
        assert tight["empirical_prob"] < 0.15


class TestRobustnessDriver:
    def test_bound_sweep_row_per_lambda(self):
        rows = robustness.run_bound_sweep(lambdas=(0.3, 0.5))
        assert len(rows) == 2

    def test_monte_carlo_loss_below_bound(self):
        rows = robustness.run_monte_carlo(
            lambdas=(0.5,), n_sectors=400, n_files=400, k=6, trials=2
        )
        row = rows[0]
        assert float(row["sim_loss_random(max)"]) <= float(row["theorem3_bound"]) + 1e-9

    def test_random_placement_beats_clustered_under_attack(self):
        contrast = robustness.run_placement_contrast(
            lam=0.5, n_sectors=200, n_files=200, k=4, seed=1
        )
        assert contrast["loss_random_placement"] <= contrast["loss_clustered_placement"]


class TestDepositDriver:
    def test_paper_deposit_ratio_reproduced(self):
        rows = deposit.run_bound_sweep(lambdas=(0.5,))
        assert rows[0]["gamma_deposit_bound"] == pytest.approx(0.0046, abs=0.0002)

    def test_protocol_check_full_compensation(self):
        check = deposit.run_protocol_check(
            n_providers=12, files=24, corrupt_fraction=0.5, deposit_ratio=0.3, k=3, seed=2
        )
        assert check["full_compensation"]
        assert check["shortfalls"] == 0
        assert check["confiscated_deposits"] >= check["compensated_value"]


class TestScalabilityDriver:
    def test_bound_linear_in_ns(self):
        rows = scalability.run_bound_sweep(ns_values=(1e3, 1e4))
        first = float(rows[0]["max_storable_bytes"])
        second = float(rows[1]["max_storable_bytes"])
        assert second == pytest.approx(10 * first, rel=0.01)

    def test_fill_experiment_within_bound(self):
        result = scalability.run_fill_experiment(n_providers=10, k=3, file_size_fraction=0.05)
        assert result["within_bound"]
        assert result["stored_files"] > 0
        # The fill stops at (roughly) the redundancy budget: half the capacity.
        assert result["replica_fill_fraction"] <= 0.55


class TestEngineBackendThreading:
    """``backend``/``engine`` select the execution path only: result rows
    stay identical, so ``repro diff`` can gate backend drift in CI."""

    def test_fill_rows_identical_across_backends(self):
        rows = {
            backend: scalability.run_fill_experiment(
                n_providers=8, k=3, file_size_fraction=0.05, backend=backend
            )
            for backend in ("reference", "vectorized")
        }
        assert rows["reference"] == rows["vectorized"]
        assert "backend" not in rows["reference"]
        assert "engine" not in rows["reference"]

    def test_fill_rows_identical_across_engines(self):
        rows = {
            engine: scalability.run_fill_experiment(
                n_providers=8,
                k=3,
                file_size_fraction=0.05,
                backend="reference",
                engine=engine,
            )
            for engine in ("object", "columnar")
        }
        assert rows["object"] == rows["columnar"]
        assert rows["object"]["stored_files"] > 0

    def test_fill_batched_driver_respects_max_files(self):
        row = scalability.run_fill_experiment(
            n_providers=8, k=3, file_size_fraction=0.01,
            backend="reference", engine="columnar", add_batch=7, max_files=20,
        )
        assert row["stored_files"] == 20

    def test_deposit_rows_identical_across_backends_and_engines(self):
        # Kernel-mode draws consume the PRNG differently from the legacy
        # path, so identity is promised across backends and engines *within*
        # kernel mode (what the CI cross-backend diff exercises).
        variants = [
            ("reference", "object"),
            ("reference", "columnar"),
            ("vectorized", "object"),
            ("vectorized", "columnar"),
        ]
        rows = {
            (backend, engine): deposit.run_protocol_check(
                n_providers=10,
                files=20,
                corrupt_fraction=0.5,
                deposit_ratio=0.3,
                k=3,
                seed=2,
                backend=backend,
                engine=engine,
            )
            for backend, engine in variants
        }
        baseline = rows[("reference", "object")]
        for key, row in rows.items():
            assert row == baseline, key
        assert "backend" not in baseline and "engine" not in baseline
        assert baseline["full_compensation"]

    def test_unknown_engine_is_an_error(self):
        with pytest.raises(ValueError, match="unknown protocol engine"):
            scalability.run_fill_experiment(engine="rowwise")
        with pytest.raises(ValueError, match="unknown protocol engine"):
            deposit.run_protocol_check(engine="rowwise")
