"""Tests for the Fenwick-tree weighted sampler and the capacity selector."""

import pytest

from repro.core.selector import CapacitySelector, SamplerInvariantError, WeightedSampler
from repro.crypto.prng import DeterministicPRNG


@pytest.fixture
def sampler_prng():
    return DeterministicPRNG.from_int(99, domain="selector-test")


def _kernel_selector(backend, seed=99, max_attempts=1000):
    return CapacitySelector(
        DeterministicPRNG.from_int(seed, domain="selector-test"),
        max_attempts=max_attempts,
        backend=backend,
    )


class TestWeightedSampler:
    def test_add_and_total_weight(self):
        sampler = WeightedSampler()
        sampler.add("a", 10)
        sampler.add("b", 30)
        assert sampler.total_weight == 40
        assert len(sampler) == 2
        assert set(sampler.keys()) == {"a", "b"}

    def test_duplicate_key_rejected(self):
        sampler = WeightedSampler()
        sampler.add("a", 1)
        with pytest.raises(KeyError):
            sampler.add("a", 2)

    def test_negative_weight_rejected(self):
        sampler = WeightedSampler()
        with pytest.raises(ValueError):
            sampler.add("a", -1)

    def test_remove_and_slot_reuse(self):
        sampler = WeightedSampler()
        for name in "abcde":
            sampler.add(name, 5)
        sampler.remove("c")
        assert not sampler.contains("c")
        sampler.add("f", 7)
        assert sampler.total_weight == 4 * 5 + 7

    def test_update_weight(self):
        sampler = WeightedSampler()
        sampler.add("a", 10)
        sampler.update_weight("a", 3)
        assert sampler.weight("a") == 3
        assert sampler.total_weight == 3

    def test_sample_respects_weights(self, sampler_prng):
        sampler = WeightedSampler()
        sampler.add("heavy", 90)
        sampler.add("light", 10)
        counts = {"heavy": 0, "light": 0}
        for _ in range(2000):
            counts[sampler.sample(sampler_prng)] += 1
        assert 0.8 < counts["heavy"] / 2000 < 0.98

    def test_sample_never_returns_zero_weight_key(self, sampler_prng):
        sampler = WeightedSampler()
        sampler.add("zero", 0)
        sampler.add("one", 1)
        for _ in range(200):
            assert sampler.sample(sampler_prng) == "one"

    def test_sample_empty_raises(self, sampler_prng):
        with pytest.raises(ValueError):
            WeightedSampler().sample(sampler_prng)

    def test_sample_after_removal_excludes_removed(self, sampler_prng):
        sampler = WeightedSampler()
        sampler.add("a", 50)
        sampler.add("b", 50)
        sampler.remove("a")
        for _ in range(100):
            assert sampler.sample(sampler_prng) == "b"

    def test_large_population_uniformity(self, sampler_prng):
        sampler = WeightedSampler()
        for i in range(200):
            sampler.add(f"s{i}", 1)
        counts = {}
        draws = 10_000
        for _ in range(draws):
            key = sampler.sample(sampler_prng)
            counts[key] = counts.get(key, 0) + 1
        expected = draws / 200
        assert max(counts.values()) < expected * 3


class TestSamplerInvariantError:
    def test_corrupted_tree_raises_with_state(self, sampler_prng):
        sampler = WeightedSampler()
        sampler.add("only", 10)
        # Corrupt the slot->key mapping behind the Fenwick tree's back:
        # the prefix sums still point at slot 0, which now has no key.
        sampler._keys[0] = None
        with pytest.raises(SamplerInvariantError) as excinfo:
            sampler.sample(sampler_prng)
        error = excinfo.value
        assert error.slot == 0
        assert error.weight == 10
        assert error.total == 10
        assert 0 <= error.target < 10
        assert "Fenwick tree is inconsistent" in str(error)

    def test_is_a_runtime_error(self):
        # Callers that caught the old bare RuntimeError keep working.
        assert issubclass(SamplerInvariantError, RuntimeError)

    def test_empty_sampler_still_raises_value_error(self, sampler_prng):
        # The zero-weight case is a *caller* error, not an invariant break.
        with pytest.raises(ValueError):
            WeightedSampler().sample(sampler_prng)


class TestSlotViews:
    def test_slot_weights_track_membership(self):
        sampler = WeightedSampler()
        sampler.add("a", 5)
        sampler.add("b", 7)
        sampler.remove("a")
        assert sampler.slot_count == 2
        assert sampler.slot_weights().tolist() == [0, 7]
        assert sampler.key_at(0) is None
        assert sampler.key_at(1) == "b"


class TestCapacitySelectorKernelMode:
    BACKENDS = ("reference", "vectorized")

    def test_backend_name_recorded(self):
        assert _kernel_selector("reference").backend == "reference"
        assert _kernel_selector("vectorized").kernel_mode is True
        legacy = CapacitySelector(DeterministicPRNG.from_int(0, domain="x"))
        assert legacy.backend is None and legacy.kernel_mode is False

    def test_random_sector_identical_across_backends(self):
        draws = {}
        for backend in self.BACKENDS:
            selector = _kernel_selector(backend)
            selector.add_sector("big", 900)
            selector.add_sector("small", 100)
            draws[backend] = [selector.random_sector() for _ in range(200)]
        assert draws["reference"] == draws["vectorized"]
        assert draws["reference"].count("big") > draws["reference"].count("small") * 4

    def test_select_with_space_identical_and_counts(self):
        outcomes = {}
        for backend in self.BACKENDS:
            selector = _kernel_selector(backend, max_attempts=50)
            selector.add_sector("full", 1000)
            selector.add_sector("open", 1000)
            free = {"full": 0, "open": 500}
            chosen = [
                selector.select_with_space(100, lambda s: free[s]) for _ in range(20)
            ]
            outcomes[backend] = (chosen, selector.samples, selector.collisions)
        assert outcomes["reference"] == outcomes["vectorized"]
        chosen, samples, collisions = outcomes["reference"]
        assert set(chosen) == {"open"}
        assert samples == 20 + collisions

    def test_select_with_space_gives_up_after_max_attempts(self):
        for backend in self.BACKENDS:
            selector = _kernel_selector(backend, max_attempts=50)
            selector.add_sector("full", 1000)
            assert selector.select_with_space(10, lambda s: 0) is None
            assert selector.collisions == 50
            assert selector.samples == 50

    def test_select_with_space_empty_selector(self):
        for backend in self.BACKENDS:
            assert _kernel_selector(backend).select_with_space(1, lambda s: 9) is None

    def test_select_batch_debits_free_space_between_picks(self):
        """The kernel's private free table mirrors the reserve() calls the
        protocol performs after a batched File Add selection."""
        for backend in self.BACKENDS:
            selector = _kernel_selector(backend)
            selector.add_sector("only", 100)
            free = {"only": 150}
            batch = selector.select_batch([100, 100], lambda s: free[s])
            # The first replica fits; the second must collide out even
            # though the *caller's* free map still says 150.
            assert batch == ["only", None]

    def test_select_batch_identical_across_backends(self):
        outcomes = {}
        for backend in self.BACKENDS:
            selector = _kernel_selector(backend)
            selector.add_sector("a", 600)
            selector.add_sector("b", 400)
            free = {"a": 128, "b": 64}
            picks = selector.select_batch([64, 64, 64], lambda s: free[s])
            outcomes[backend] = (picks, selector.samples, selector.collisions)
        assert outcomes["reference"] == outcomes["vectorized"]
        picks = outcomes["reference"][0]
        # 192 bytes fit in total, so every replica lands somewhere, and
        # each sector only has room for its own share (2x64 / 1x64).
        assert None not in picks
        assert sorted(picks) == ["a", "a", "b"]

    def test_select_batch_requires_kernel_mode(self, sampler_prng):
        with pytest.raises(RuntimeError, match="kernel-mode"):
            CapacitySelector(sampler_prng).select_batch([1], lambda s: 1)

    def test_removal_excludes_sector_from_kernel_draws(self):
        for backend in self.BACKENDS:
            selector = _kernel_selector(backend)
            selector.add_sector("a", 50)
            selector.add_sector("b", 50)
            selector.remove_sector("a")
            assert all(selector.random_sector() == "b" for _ in range(50))


class TestCapacitySelector:
    def test_random_sector_proportional_to_capacity(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        selector.add_sector("big", 900)
        selector.add_sector("small", 100)
        counts = {"big": 0, "small": 0}
        for _ in range(2000):
            counts[selector.random_sector()] += 1
        assert counts["big"] > counts["small"] * 4

    def test_select_with_space_skips_full_sectors(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        selector.add_sector("full", 500)
        selector.add_sector("empty", 500)
        free = {"full": 0, "empty": 500}
        chosen = selector.select_with_space(100, lambda s: free[s])
        assert chosen == "empty"
        assert selector.collisions >= 0

    def test_select_with_space_counts_collisions(self, sampler_prng):
        selector = CapacitySelector(sampler_prng, max_attempts=50)
        selector.add_sector("full", 1000)
        assert selector.select_with_space(10, lambda s: 0) is None
        assert selector.collisions == 50

    def test_select_with_space_empty_selector(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        assert selector.select_with_space(10, lambda s: 100) is None

    def test_remove_sector_idempotent(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        selector.add_sector("a", 10)
        selector.remove_sector("a")
        selector.remove_sector("a")
        assert len(selector) == 0
        assert selector.total_capacity == 0
