"""Tests for the Fenwick-tree weighted sampler and the capacity selector."""

import pytest

from repro.core.selector import CapacitySelector, WeightedSampler
from repro.crypto.prng import DeterministicPRNG


@pytest.fixture
def sampler_prng():
    return DeterministicPRNG.from_int(99, domain="selector-test")


class TestWeightedSampler:
    def test_add_and_total_weight(self):
        sampler = WeightedSampler()
        sampler.add("a", 10)
        sampler.add("b", 30)
        assert sampler.total_weight == 40
        assert len(sampler) == 2
        assert set(sampler.keys()) == {"a", "b"}

    def test_duplicate_key_rejected(self):
        sampler = WeightedSampler()
        sampler.add("a", 1)
        with pytest.raises(KeyError):
            sampler.add("a", 2)

    def test_negative_weight_rejected(self):
        sampler = WeightedSampler()
        with pytest.raises(ValueError):
            sampler.add("a", -1)

    def test_remove_and_slot_reuse(self):
        sampler = WeightedSampler()
        for name in "abcde":
            sampler.add(name, 5)
        sampler.remove("c")
        assert not sampler.contains("c")
        sampler.add("f", 7)
        assert sampler.total_weight == 4 * 5 + 7

    def test_update_weight(self):
        sampler = WeightedSampler()
        sampler.add("a", 10)
        sampler.update_weight("a", 3)
        assert sampler.weight("a") == 3
        assert sampler.total_weight == 3

    def test_sample_respects_weights(self, sampler_prng):
        sampler = WeightedSampler()
        sampler.add("heavy", 90)
        sampler.add("light", 10)
        counts = {"heavy": 0, "light": 0}
        for _ in range(2000):
            counts[sampler.sample(sampler_prng)] += 1
        assert 0.8 < counts["heavy"] / 2000 < 0.98

    def test_sample_never_returns_zero_weight_key(self, sampler_prng):
        sampler = WeightedSampler()
        sampler.add("zero", 0)
        sampler.add("one", 1)
        for _ in range(200):
            assert sampler.sample(sampler_prng) == "one"

    def test_sample_empty_raises(self, sampler_prng):
        with pytest.raises(ValueError):
            WeightedSampler().sample(sampler_prng)

    def test_sample_after_removal_excludes_removed(self, sampler_prng):
        sampler = WeightedSampler()
        sampler.add("a", 50)
        sampler.add("b", 50)
        sampler.remove("a")
        for _ in range(100):
            assert sampler.sample(sampler_prng) == "b"

    def test_large_population_uniformity(self, sampler_prng):
        sampler = WeightedSampler()
        for i in range(200):
            sampler.add(f"s{i}", 1)
        counts = {}
        draws = 10_000
        for _ in range(draws):
            key = sampler.sample(sampler_prng)
            counts[key] = counts.get(key, 0) + 1
        expected = draws / 200
        assert max(counts.values()) < expected * 3


class TestCapacitySelector:
    def test_random_sector_proportional_to_capacity(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        selector.add_sector("big", 900)
        selector.add_sector("small", 100)
        counts = {"big": 0, "small": 0}
        for _ in range(2000):
            counts[selector.random_sector()] += 1
        assert counts["big"] > counts["small"] * 4

    def test_select_with_space_skips_full_sectors(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        selector.add_sector("full", 500)
        selector.add_sector("empty", 500)
        free = {"full": 0, "empty": 500}
        chosen = selector.select_with_space(100, lambda s: free[s])
        assert chosen == "empty"
        assert selector.collisions >= 0

    def test_select_with_space_counts_collisions(self, sampler_prng):
        selector = CapacitySelector(sampler_prng, max_attempts=50)
        selector.add_sector("full", 1000)
        assert selector.select_with_space(10, lambda s: 0) is None
        assert selector.collisions == 50

    def test_select_with_space_empty_selector(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        assert selector.select_with_space(10, lambda s: 100) is None

    def test_remove_sector_idempotent(self, sampler_prng):
        selector = CapacitySelector(sampler_prng)
        selector.add_sector("a", 10)
        selector.remove_sector("a")
        selector.remove_sector("a")
        assert len(selector) == 0
        assert selector.total_capacity == 0
