"""Executor tests: deterministic seeding and serial/parallel equivalence."""

from __future__ import annotations

import pytest

from repro.runner.executor import derive_trial_seed, run_scenario, run_trials
from repro.runner.registry import (
    ParamSpec,
    ScenarioSpec,
    load_builtin_scenarios,
    register,
    unregister,
)


def _echo_trial(task):
    """Deterministic trial: value depends only on the injected seed/params."""
    return {"x": task["x"], "y": task["x"] ** 2, "noise": task["seed"] % 9973}


def _build_echo_trials(params):
    return [{"x": x} for x in range(params["n"])]


ECHO_PARAMS = {"n": ParamSpec(6, "number of trials")}


@pytest.fixture
def echo_scenario():
    spec = register(
        ScenarioSpec(
            name="temp-echo",
            description="echo scenario",
            trial_fn=_echo_trial,
            build_trials=_build_echo_trials,
            params=ECHO_PARAMS,
        ),
        replace=True,
    )
    yield spec
    unregister("temp-echo")


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_trial_seed(7, "robustness", 3) == derive_trial_seed(
            7, "robustness", 3
        )

    def test_varies_with_index_scenario_and_root(self):
        base = derive_trial_seed(7, "robustness", 0)
        assert base != derive_trial_seed(7, "robustness", 1)
        assert base != derive_trial_seed(7, "table3", 0)
        assert base != derive_trial_seed(8, "robustness", 0)

    def test_seed_fits_in_63_bits(self):
        seed = derive_trial_seed(0, "x", 0)
        assert 0 <= seed < 2**63

    def test_negative_root_seed_rejected(self):
        with pytest.raises(ValueError):
            derive_trial_seed(-1, "x", 0)


class TestRunTrials:
    def test_serial_results_in_trial_order(self, echo_scenario):
        rows = run_trials(echo_scenario, _build_echo_trials({"n": 4}), seed=5)
        assert [row["trial"] for row in rows] == [0, 1, 2, 3]
        assert [row["x"] for row in rows] == [0, 1, 2, 3]

    def test_parallel_equals_serial(self, echo_scenario):
        trials = _build_echo_trials({"n": 8})
        serial = run_trials(echo_scenario, trials, workers=1, seed=11)
        parallel = run_trials(echo_scenario, trials, workers=3, seed=11)
        assert serial == parallel

    def test_different_root_seeds_differ(self, echo_scenario):
        trials = _build_echo_trials({"n": 4})
        assert run_trials(echo_scenario, trials, seed=1) != run_trials(
            echo_scenario, trials, seed=2
        )

    def test_zero_workers_rejected(self, echo_scenario):
        with pytest.raises(ValueError):
            run_trials(echo_scenario, [{}], workers=0)


class TestRunScenario:
    def test_manifest_fields(self, echo_scenario):
        manifest = run_scenario("temp-echo", {"n": 3}, workers=1, seed=2)
        assert manifest.scenario == "temp-echo"
        assert manifest.params == {"n": 3}
        assert manifest.seed == 2
        assert manifest.trial_count == 3
        assert len(manifest.rows) == 3

    def test_empty_trial_list_rejected(self, echo_scenario):
        with pytest.raises(ValueError, match="empty trial list"):
            run_scenario("temp-echo", {"n": 0})

    def test_robustness_serial_vs_parallel_identical_rows(self):
        """The acceptance criterion, at a scale that stays fast in CI."""
        load_builtin_scenarios()
        overrides = {
            "lambdas": (0.5,),
            "n_sectors": 200,
            "n_files": 200,
            "k": 4,
            "trials": 2,
        }
        serial = run_scenario("robustness", overrides, workers=1, seed=7)
        parallel = run_scenario("robustness", overrides, workers=4, seed=7)
        assert serial.rows == parallel.rows
        assert serial.trial_rows_equal(parallel)
        assert serial.summary == parallel.summary

    def test_robustness_summary_respects_bound(self):
        load_builtin_scenarios()
        manifest = run_scenario(
            "robustness",
            {"lambdas": (0.5,), "n_sectors": 400, "n_files": 400, "k": 6, "trials": 2},
            seed=0,
        )
        assert all(row["bound_holds"] for row in manifest.summary)
