"""Campaign orchestration tests: shared pool, cache skips, reporting, CLI."""

from __future__ import annotations

import json

import pytest

import repro.campaign.orchestrator as orchestrator_module
from repro.campaign.orchestrator import run_campaign
from repro.campaign.report import (
    axis_marginal_rows,
    cell_rows,
    render_csv,
    render_markdown,
    slowest_cell_rows,
)
from repro.campaign.spec import parse_campaign
from repro.campaign.store import ResultStore
from repro.runner.executor import create_worker_pool


def _two_scenario_spec():
    """2 scenarios, 4 cells: the shape the CI smoke job also runs."""
    return parse_campaign(
        {
            "campaign": {"name": "grid", "description": "test grid"},
            "scenarios": [
                {"scenario": "camp-alpha", "sweep": {"scale": [1, 2]}},
                {"scenario": "camp-beta", "sweep": {"level": [0, 1]}},
            ],
        }
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store", version="v1")


class TestSharedPool:
    def test_one_pool_serves_all_scenarios_and_cells(
        self, campaign_scenarios, store, monkeypatch
    ):
        """The acceptance criterion: >=2 scenarios' cells, exactly one pool."""
        created = []

        def counting_factory(workers):
            pool = create_worker_pool(workers)
            created.append(workers)
            return pool

        monkeypatch.setattr(
            orchestrator_module, "create_worker_pool", counting_factory
        )
        result = run_campaign(_two_scenario_spec(), store, workers=2)
        assert result.cells == 4
        assert {o.cell.scenario for o in result.outcomes} == {"camp-alpha", "camp-beta"}
        assert created == [2]
        assert result.pools_created == 1

    def test_fully_cached_campaign_creates_no_pool(
        self, campaign_scenarios, store, monkeypatch
    ):
        run_campaign(_two_scenario_spec(), store, workers=2)

        def failing_factory(workers):  # pragma: no cover - must not be called
            raise AssertionError("pool created for a fully cached campaign")

        monkeypatch.setattr(orchestrator_module, "create_worker_pool", failing_factory)
        rerun = run_campaign(_two_scenario_spec(), store, workers=2)
        assert rerun.cache_hits == 4
        assert rerun.trials_executed == 0
        assert rerun.pools_created == 0

    def test_serial_campaign_never_forks(self, campaign_scenarios, store, monkeypatch):
        monkeypatch.setattr(
            orchestrator_module,
            "create_worker_pool",
            lambda workers: pytest.fail("workers=1 must not create a pool"),
        )
        result = run_campaign(_two_scenario_spec(), store, workers=1)
        assert result.trials_executed == 10  # 2x3 alpha trials + 2x2 beta trials

    def test_pooled_rows_equal_serial_rows(self, campaign_scenarios, tmp_path):
        serial = run_campaign(
            _two_scenario_spec(), ResultStore(tmp_path / "a", version="v1"), workers=1
        )
        pooled = run_campaign(
            _two_scenario_spec(), ResultStore(tmp_path / "b", version="v1"), workers=2
        )
        for left, right in zip(serial.outcomes, pooled.outcomes):
            assert left.manifest.rows == right.manifest.rows


class TestCacheBehaviour:
    def test_rerun_serves_every_cell_from_store(self, campaign_scenarios, store):
        first = run_campaign(_two_scenario_spec(), store, workers=1)
        assert first.cache_hits == 0
        second = run_campaign(_two_scenario_spec(), store, workers=1)
        assert second.cache_hits == second.cells == 4
        assert second.trials_executed == 0
        for left, right in zip(first.outcomes, second.outcomes):
            assert left.key == right.key
            assert left.manifest.to_json() == right.manifest.to_json()

    def test_force_reexecutes_cached_cells(self, campaign_scenarios, store):
        run_campaign(_two_scenario_spec(), store, workers=1)
        forced = run_campaign(_two_scenario_spec(), store, workers=1, force=True)
        assert forced.cache_hits == 0
        assert forced.trials_executed == 10

    def test_progress_callback_sees_every_cell_in_plan_order(
        self, campaign_scenarios, store
    ):
        seen = []
        run_campaign(_two_scenario_spec(), store, workers=1, progress=seen.append)
        assert [o.cell.label for o in seen] == [
            "camp-alpha[scale=1][seed=0]",
            "camp-alpha[scale=2][seed=0]",
            "camp-beta[level=0][seed=0]",
            "camp-beta[level=1][seed=0]",
        ]

    def test_status_line_reports_hits_and_trials(self, campaign_scenarios, store):
        run_campaign(_two_scenario_spec(), store, workers=1)
        line = run_campaign(_two_scenario_spec(), store, workers=1).status_line()
        assert "cache_hits=4/4 (100%)" in line
        assert "trials_executed=0" in line


class TestReport:
    def test_reports_identical_between_fresh_and_cached_runs(
        self, campaign_scenarios, store
    ):
        spec = _two_scenario_spec()
        first = run_campaign(spec, store, workers=1)
        second = run_campaign(spec, store, workers=1)
        assert render_markdown(spec, first.outcomes) == render_markdown(
            spec, second.outcomes
        )
        assert render_csv(first.outcomes) == render_csv(second.outcomes)

    def test_cell_rows_carry_sweep_axes_and_summary(self, campaign_scenarios, store):
        spec = _two_scenario_spec()
        result = run_campaign(spec, store, workers=1)
        tables = cell_rows(result.outcomes)
        alpha = tables["camp-alpha"]
        assert [row["sweep:scale"] for row in alpha] == [1, 2]
        assert all(row["scenario"] == "camp-alpha" for row in alpha)
        assert all("value_mean" in row for row in alpha)
        # camp-beta has no aggregator: its summary is synthesised from rows.
        assert all("loss_mean" in row for row in tables["camp-beta"])

    def test_axis_marginals_aggregate_over_other_dimensions(
        self, campaign_scenarios, store
    ):
        spec = _two_scenario_spec()
        result = run_campaign(spec, store, workers=1)
        rows = cell_rows(result.outcomes)["camp-alpha"]
        marginal = axis_marginal_rows(rows, "scale")
        assert [(row["scale"], row["metric"]) for row in marginal] == [
            (1, "value"),
            (2, "value"),
        ]
        assert all(row["cells"] == 1 for row in marginal)

    def test_markdown_contains_scenario_sections(self, campaign_scenarios, store):
        spec = _two_scenario_spec()
        result = run_campaign(spec, store, workers=1)
        text = render_markdown(spec, result.outcomes)
        assert "# Campaign report: grid" in text
        assert "## camp-alpha" in text
        assert "### camp-alpha by scale" in text
        assert "## camp-beta" in text
        assert "## Slowest cells" in text

    def test_slowest_cells_rank_by_stored_wall(self, campaign_scenarios, store):
        spec = _two_scenario_spec()
        result = run_campaign(spec, store, workers=1)
        # Pin walls on the stored manifests so the ranking is deterministic
        # regardless of real execution time; labels break the tie at 0.5.
        walls = {}
        for index, outcome in enumerate(result.outcomes):
            outcome.manifest.duration_seconds = 0.5 if index < 2 else float(index)
            walls[outcome.cell.label] = outcome.manifest.duration_seconds
        rows = slowest_cell_rows(result.outcomes, limit=3)
        assert len(rows) == 3
        assert [row["wall_s"] for row in rows] == sorted(
            (row["wall_s"] for row in rows), reverse=True
        )
        tied = sorted(label for label, wall in walls.items() if wall == 0.5)
        assert rows[-1]["cell"] == tied[0]  # tie broken on label
        assert all(
            row["trials"] > 0 and row["scenario"] in {"camp-alpha", "camp-beta"}
            for row in rows
        )
        # limit caps the table even when more cells exist.
        assert len(slowest_cell_rows(result.outcomes, limit=2)) == 2


class TestCampaignCli:
    def _write_spec(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps(
                {
                    "campaign": {"name": "cli-grid"},
                    "scenarios": [
                        {"scenario": "camp-alpha", "sweep": {"scale": [1, 2]}},
                        {"scenario": "camp-beta"},
                    ],
                }
            )
        )
        return str(path)

    def test_run_then_cached_rerun(self, campaign_scenarios, tmp_path, capsys):
        from repro.runner.cli import main

        spec = self._write_spec(tmp_path)
        store = str(tmp_path / "store")
        assert main(["campaign", "run", spec, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "cache_hits=0/3" in out
        assert "report written to" in out
        assert main(["campaign", "run", spec, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "cache_hits=3/3 (100%)" in out
        assert "trials_executed=0" in out

    def test_status_does_not_execute(self, campaign_scenarios, tmp_path, capsys):
        from repro.runner.cli import main

        spec = self._write_spec(tmp_path)
        store = str(tmp_path / "store")
        assert main(["campaign", "status", spec, "--store", store]) == 0
        assert "cache_hits=0/3" in capsys.readouterr().out
        assert not (tmp_path / "store").exists()

    def test_report_fails_on_missing_cells(self, campaign_scenarios, tmp_path, capsys):
        from repro.runner.cli import main

        spec = self._write_spec(tmp_path)
        store = str(tmp_path / "store")
        assert main(["campaign", "report", spec, "--store", store]) == 1
        err = capsys.readouterr().err
        assert "not in the store" in err
        assert "missing: camp-alpha[scale=1][seed=0]" in err

    def test_report_from_cache_only(self, campaign_scenarios, tmp_path, capsys):
        from repro.runner.cli import main

        spec = self._write_spec(tmp_path)
        store = str(tmp_path / "store")
        report_dir = tmp_path / "report"
        assert main(["campaign", "run", spec, "--store", store]) == 0
        capsys.readouterr()
        assert (
            main(
                ["campaign", "report", spec, "--store", store,
                 "--report-dir", str(report_dir)]
            )
            == 0
        )
        assert (report_dir / "report.md").exists()
        assert (report_dir / "summary.csv").exists()

    def test_bad_spec_path_is_a_user_error(self, tmp_path, capsys):
        from repro.runner.cli import main

        assert main(["campaign", "run", str(tmp_path / "nope.toml")]) == 2
        assert "cannot read campaign spec" in capsys.readouterr().err
