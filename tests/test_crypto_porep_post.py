"""Tests for the simulated PoRep and PoSt schemes."""

import pytest

from repro.crypto.beacon import RandomBeacon
from repro.crypto.porep import PoRepParams, PoRepProver, PoRepVerifier
from repro.crypto.post import WindowPoSt, WinningPoSt


@pytest.fixture
def prover():
    return PoRepProver(PoRepParams(chunk_size=64))


@pytest.fixture
def verifier():
    return PoRepVerifier(PoRepParams(chunk_size=64))


class TestPoRepSealing:
    def test_seal_unseal_roundtrip(self, prover):
        data = b"the raw file contents" * 10
        replica = prover.setup(data, b"key-1")
        assert prover.unseal(replica, b"key-1") == data

    def test_sealed_bytes_differ_from_raw(self, prover):
        data = b"the raw file contents" * 10
        replica = prover.setup(data, b"key-1")
        assert replica.data != data
        assert replica.size == len(data)

    def test_different_keys_give_different_replicas(self, prover):
        data = b"same data" * 20
        r1 = prover.setup(data, b"key-1")
        r2 = prover.setup(data, b"key-2")
        assert r1.data != r2.data
        assert r1.commitment.replica_root != r2.commitment.replica_root

    def test_same_key_is_deterministic(self, prover):
        data = b"same data" * 20
        assert prover.setup(data, b"key").data == prover.setup(data, b"key").data

    def test_unseal_with_wrong_key_garbles(self, prover):
        data = b"secret" * 30
        replica = prover.setup(data, b"key-1")
        assert prover.unseal(replica, b"key-2") != data

    def test_capacity_replica_is_sealed_zeros(self, prover):
        cr = prover.capacity_replica(128, b"cr-key")
        assert cr.size == 128
        assert prover.unseal(cr, b"cr-key") == bytes(128)


class TestPoRepVerification:
    def test_valid_proof_verifies(self, prover, verifier):
        data = b"data" * 64
        replica = prover.setup(data, b"key")
        proof = prover.prove(replica, b"key")
        assert verifier.verify(proof, b"key")

    def test_proof_bound_to_key(self, prover, verifier):
        data = b"data" * 64
        replica = prover.setup(data, b"key")
        proof = prover.prove(replica, b"key")
        assert not verifier.verify(proof, b"other-key")

    def test_commitment_matches_raw_data(self, prover, verifier):
        data = b"data" * 64
        replica = prover.setup(data, b"key")
        assert verifier.verify_commitment_against_data(replica.commitment, data)
        assert not verifier.verify_commitment_against_data(replica.commitment, data + b"x")

    def test_cost_model_scales_with_size(self):
        params = PoRepParams(seal_seconds_per_gib=3600.0, snark_seconds=600.0)
        small = params.seal_time(1 << 20)
        large = params.seal_time(1 << 30)
        assert large > small
        assert params.recovery_time(1 << 30) < params.seal_time(1 << 30)


class TestWindowPoSt:
    def test_honest_prover_passes(self, prover):
        post = WindowPoSt(challenge_count=3, chunk_size=64)
        data = b"replica contents" * 50
        replica = prover.setup(data, b"key")
        challenge = post.make_challenge(replica.commitment, epoch=5, beacon_value=b"beacon")
        proof = post.prove(replica, challenge, prover_id=b"provider-1")
        assert post.verify(proof)

    def test_challenge_is_deterministic_per_epoch(self, prover):
        post = WindowPoSt(challenge_count=3, chunk_size=64)
        replica = prover.setup(b"x" * 1000, b"key")
        c1 = post.make_challenge(replica.commitment, 5, b"beacon")
        c2 = post.make_challenge(replica.commitment, 5, b"beacon")
        c3 = post.make_challenge(replica.commitment, 6, b"beacon")
        assert c1.chunk_indices == c2.chunk_indices
        assert c1.randomness != c3.randomness

    def test_wrong_replica_rejected_at_prove_time(self, prover):
        post = WindowPoSt(chunk_size=64)
        replica_a = prover.setup(b"a" * 500, b"key")
        replica_b = prover.setup(b"b" * 500, b"key")
        challenge = post.make_challenge(replica_a.commitment, 1, b"beacon")
        with pytest.raises(ValueError):
            post.prove(replica_b, challenge, b"provider")

    def test_tampered_chunk_fails_verification(self, prover):
        post = WindowPoSt(challenge_count=2, chunk_size=64)
        replica = prover.setup(b"z" * 700, b"key")
        challenge = post.make_challenge(replica.commitment, 1, b"beacon")
        proof = post.prove(replica, challenge, b"provider")
        tampered = type(proof)(
            challenge=proof.challenge,
            chunks=tuple(b"\x00" * len(c) for c in proof.chunks),
            merkle_proofs=proof.merkle_proofs,
            prover_id=proof.prover_id,
        )
        assert not post.verify(tampered)

    def test_small_replica_fewer_challenges(self, prover):
        post = WindowPoSt(challenge_count=10, chunk_size=64)
        replica = prover.setup(b"tiny", b"key")
        challenge = post.make_challenge(replica.commitment, 1, b"beacon")
        assert len(challenge.chunk_indices) == 1


class TestWinningPoSt:
    def test_more_capacity_wins_more_often(self):
        winning = WinningPoSt()
        beacon = RandomBeacon()
        big_wins = 0
        rounds = 200
        for epoch in range(rounds):
            winner = winning.elect(
                [(b"small", 1), (b"big", 20)], epoch, beacon.output(epoch).value
            )
            if winner == b"big":
                big_wins += 1
        assert big_wins > rounds * 0.7

    def test_zero_capacity_never_wins_against_positive(self):
        winning = WinningPoSt()
        for epoch in range(50):
            winner = winning.elect([(b"zero", 0), (b"one", 1)], epoch, b"beacon")
            assert winner == b"one"

    def test_election_deterministic(self):
        winning = WinningPoSt()
        providers = [(b"a", 3), (b"b", 5)]
        assert winning.elect(providers, 9, b"r") == winning.elect(providers, 9, b"r")
