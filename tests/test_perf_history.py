"""Perf history: entry keying, artifact adapters, trends, CLI gates.

The store's contract: append-only JSONL, one entry per measurement,
series identified by a content hash over (bench, shape, backend, host,
unit) so trends never mix incomparable numbers, and a rolling-median
baseline that turns `repro perf check` into a CI regression gate --
exit 1 when any series' latest value exceeds its baseline by more than
the allowed percentage, exit 0 on a clean (or empty) history.
"""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import main
from repro.telemetry import history


def entry(value, bench="b", backend=None, recorded=0.0, **kwargs):
    return history.make_entry(
        bench,
        value,
        backend=backend,
        version="v1",
        host="testhost",
        recorded_unix=recorded,
        **kwargs,
    )


class TestEntries:
    def test_host_fingerprint_is_short_and_stable(self):
        assert history.host_fingerprint() == history.host_fingerprint()
        assert len(history.host_fingerprint()) == 12

    def test_series_key_separates_what_must_not_mix(self):
        base = history.series_key("bench", {"n": 10}, "vectorized", "host")
        assert base == history.series_key("bench", {"n": 10}, "vectorized", "host")
        assert base != history.series_key("other", {"n": 10}, "vectorized", "host")
        assert base != history.series_key("bench", {"n": 20}, "vectorized", "host")
        assert base != history.series_key("bench", {"n": 10}, "reference", "host")
        assert base != history.series_key("bench", {"n": 10}, "vectorized", "h2")
        assert base != history.series_key("bench", {"n": 10}, "vectorized", "host", unit="ms")

    def test_make_entry_carries_provenance(self):
        made = entry(1.5, bench="kernel.x", backend="vectorized", source="t.json")
        assert made["bench"] == "kernel.x"
        assert made["value"] == 1.5
        assert made["version"] == "v1"
        assert made["source"] == "t.json"
        assert made["series"] == history.series_key(
            "kernel.x", None, "vectorized", "testhost"
        )

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        history.append_entries(path, [entry(1.0), entry(2.0)])
        history.append_entries(path, [entry(3.0)])
        values = [e["value"] for e in history.load_history(path)]
        assert values == [1.0, 2.0, 3.0]

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = json.dumps(entry(1.0))
        path.write_text(
            "\n".join([good, "{truncated", '{"bench": 3}', '"just a string"', ""])
            + "\n"
        )
        assert [e["value"] for e in history.load_history(path)] == [1.0]

    def test_missing_file_loads_empty(self, tmp_path):
        assert history.load_history(tmp_path / "absent.jsonl") == []

    def test_default_path_honours_env_var(self, monkeypatch):
        monkeypatch.delenv(history.HISTORY_ENV_VAR, raising=False)
        assert str(history.default_history_path()) == history.DEFAULT_HISTORY_PATH
        monkeypatch.setenv(history.HISTORY_ENV_VAR, "/tmp/elsewhere.jsonl")
        assert str(history.default_history_path()) == "/tmp/elsewhere.jsonl"


class TestArtifactAdapters:
    def test_backend_sweep_artifact(self):
        artifact = {
            "kind": "scenario_backend_sweep",
            "scenario": "churn",
            "seed": 0,
            "overrides": {"trials": "2"},
            "trials": 2,
            "backends": {
                "reference": {"wall_seconds": 1.5, "speedup_vs_reference": 1.0},
                "vectorized": {"wall_seconds": 0.5, "speedup_vs_reference": 3.0},
            },
        }
        entries = history.entries_from_artifact(artifact, version="v1")
        assert [(e["bench"], e["backend"], e["value"]) for e in entries] == [
            ("scenario.churn", "reference", 1.5),
            ("scenario.churn", "vectorized", 0.5),
        ]

    def test_kernel_bench_artifact(self):
        artifact = {
            "shapes": {"refresh": {"n_sectors": 100}},
            "results": {
                "refresh": {
                    "reference_seconds": 0.2,
                    "vectorized_seconds": 0.05,
                    "speedup": 4.0,
                }
            },
        }
        entries = history.entries_from_artifact(artifact)
        assert [(e["bench"], e["backend"]) for e in entries] == [
            ("kernel.refresh", "reference"),
            ("kernel.refresh", "vectorized"),
        ]
        assert entries[0]["shape"] == {"n_sectors": 100}

    def test_telemetry_bench_artifact(self):
        artifact = {
            "scenario": "churn",
            "params": {"trials": 2},
            "seed": 0,
            "untraced_wall_s": 1.0,
            "traced_wall_s": 1.04,
        }
        entries = history.entries_from_artifact(artifact)
        assert [(e["bench"], e["value"]) for e in entries] == [
            ("telemetry.untraced", 1.0),
            ("telemetry.traced", 1.04),
        ]

    def test_run_manifest_artifact(self):
        manifest = {
            "scenario": "robustness",
            "params": {"backend": "vectorized", "trials": 4},
            "seed": 7,
            "duration_seconds": 2.25,
            "version": "deadbeef",
        }
        (made,) = history.entries_from_artifact(manifest)
        assert made["bench"] == "run.robustness"
        assert made["backend"] == "vectorized"
        assert made["value"] == 2.25
        assert made["version"] == "deadbeef"

    def test_unrecognised_artifact_raises(self):
        with pytest.raises(ValueError):
            history.entries_from_artifact({"what": "is this"})


class TestTrendsAndGates:
    def test_single_entry_has_no_baseline(self):
        (row,) = history.trend_rows([entry(1.0)])
        assert row["runs"] == 1
        assert row["baseline"] == ""
        assert row["delta_pct"] == ""
        assert history.regressions([entry(1.0)], 0.0) == []

    def test_baseline_is_rolling_median_of_priors(self):
        entries = [entry(v) for v in (1.0, 3.0, 2.0, 100.0)]
        (row,) = history.trend_rows(entries)
        # Baseline is the median of the *prior* entries (1, 3, 2) = 2.
        assert row["baseline"] == 2.0
        assert row["latest"] == 100.0
        assert row["delta_pct"] == 4900.0

    def test_window_limits_the_baseline(self):
        values = [10.0] * 5 + [1.0] * 5 + [1.0]
        (row,) = history.trend_rows([entry(v) for v in values], window=5)
        assert row["baseline"] == 1.0

    def test_regression_gate_flags_only_past_threshold(self):
        slow = [entry(v) for v in (1.0, 1.0, 1.08)]
        assert history.regressions(slow, 10.0) == []
        flagged = history.regressions(slow, 5.0)
        assert len(flagged) == 1
        assert flagged[0]["delta_pct"] == 8.0

    def test_improvements_never_flag(self):
        fast = [entry(v) for v in (1.0, 1.0, 0.5)]
        assert history.regressions(fast, 0.0) == []

    def test_series_do_not_mix(self):
        entries = [
            entry(1.0, backend="reference"),
            entry(9.0, backend="vectorized"),
            entry(1.0, backend="reference"),
        ]
        rows = history.trend_rows(entries)
        assert [(r["backend"], r["runs"]) for r in rows] == [
            ("reference", 2),
            ("vectorized", 1),
        ]


class TestCLI:
    def _sweep_artifact(self, tmp_path, wall=1.0):
        artifact = {
            "kind": "scenario_backend_sweep",
            "scenario": "churn",
            "seed": 0,
            "overrides": {},
            "trials": 2,
            "backends": {
                "reference": {"wall_seconds": wall, "speedup_vs_reference": 1.0}
            },
        }
        path = tmp_path / f"BENCH_{wall}.json"
        path.write_text(json.dumps(artifact))
        return path

    def test_record_report_check_round_trip(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        for wall in (1.0, 1.02):
            artifact = self._sweep_artifact(tmp_path, wall)
            assert main(["perf", "record", str(artifact), "--history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "recorded 1 entries" in out
        assert main(["perf", "report", "--history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "scenario.churn" in out
        assert main(
            ["perf", "check", "--max-regression", "10", "--history", str(hist)]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        for wall in (1.0, 1.0, 5.0):
            artifact = self._sweep_artifact(tmp_path, wall)
            assert main(["perf", "record", str(artifact), "--history", str(hist)]) == 0
        code = main(["perf", "check", "--max-regression", "10", "--history", str(hist)])
        assert code == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_empty_history_reports_and_passes(self, tmp_path, capsys):
        hist = tmp_path / "empty.jsonl"
        assert main(["perf", "report", "--history", str(hist)]) == 0
        assert main(["perf", "check", "--history", str(hist)]) == 0
        assert "empty" in capsys.readouterr().err

    def test_record_rejects_bad_artifacts(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        missing = tmp_path / "missing.json"
        assert main(["perf", "record", str(missing), "--history", str(hist)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a bench"}')
        assert main(["perf", "record", str(bad), "--history", str(hist)]) == 2
        assert not hist.exists()

    def test_history_none_disables_perf_verbs(self, tmp_path, capsys):
        assert main(["perf", "report", "--history", "none"]) == 2
        assert "history" in capsys.readouterr().err

    def test_bench_appends_automatically(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        args = [
            "bench", "churn", "--seed", "0",
            "--set", "trials=2", "--set", "cycles=2", "--set", "files=4",
            "--workers", "1", "--history", str(hist),
        ]
        assert main(args) == 0
        assert "perf history: 1 bench entries" in capsys.readouterr().out
        (made,) = history.load_history(hist)
        assert made["bench"] == "scenario.churn"
        assert made["backend"] == "serial"
        # --history none opts out.
        assert main(args[:-1] + ["none"]) == 0
        assert len(history.load_history(hist)) == 1

    def test_record_accepts_run_manifests(self, tmp_path, capsys):
        hist = tmp_path / "history.jsonl"
        out_path = tmp_path / "run.json"
        assert main([
            "run", "churn", "--quiet", "--seed", "0",
            "--set", "trials=2", "--set", "cycles=2", "--set", "files=4",
            "--out", str(out_path),
        ]) == 0
        assert main(["perf", "record", str(out_path), "--history", str(hist)]) == 0
        (made,) = history.load_history(hist)
        assert made["bench"] == "run.churn"
        assert made["value"] > 0
