"""Tests for the event log and the chain application adapter."""

import pytest

from repro.chain.blockchain import Blockchain, ConsensusConfig
from repro.chain.ledger import Ledger
from repro.core.chain_app import FileInsurerChainApp
from repro.core.events import EventLog, EventType
from repro.core.file_descriptor import FileState
from repro.core.params import ProtocolParams

ROOT = b"\x09" * 32


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(EventType.FILE_STORED, 1.0, "file#1", owner="c")
        log.emit(EventType.FILE_LOST, 2.0, "file#2")
        assert len(log) == 2
        assert log.count(EventType.FILE_STORED) == 1
        assert log.of_type(EventType.FILE_LOST)[0].subject == "file#2"
        assert log.last().event_type == EventType.FILE_LOST
        assert log.last(EventType.FILE_STORED).subject == "file#1"

    def test_last_of_missing_type_is_none(self):
        log = EventLog()
        assert log.last() is None
        assert log.last(EventType.FILE_LOST) is None

    def test_describe_contains_type_and_subject(self):
        log = EventLog()
        event = log.emit(EventType.SECTOR_REGISTERED, 3.5, "p#0", capacity=10)
        assert "sector_registered" in event.describe()
        assert "p#0" in event.describe()

    def test_iteration_order(self):
        log = EventLog()
        for i in range(5):
            log.emit(EventType.RENT_CHARGED, float(i), f"file#{i}")
        times = [event.time for event in log]
        assert times == sorted(times)


def build_chain_app():
    # Block time must be shorter than the file-transfer deadline so a
    # provider's File Confirm can land in a later block before CheckAlloc.
    params = ProtocolParams.small_test()
    chain = Blockchain(config=ConsensusConfig(epoch_seconds=5.0))
    app = FileInsurerChainApp(
        chain,
        params=params,
        health_oracle=lambda sector_id: True,
        auto_prove=True,
    )
    for index in range(3):
        chain.ledger.mint(f"prov-{index}", 1_000_000)
    chain.ledger.mint("client", 1_000_000)
    return chain, app, params


class TestChainApp:
    def test_sector_register_via_transaction(self):
        chain, app, params = build_chain_app()
        app.submit("prov-0", "sector_register", capacity=params.min_capacity)
        block = chain.produce_block()
        receipt = block.receipts[0]
        assert receipt.success, receipt.error
        assert receipt.result in app.protocol.sectors

    def test_full_file_lifecycle_through_blocks(self):
        chain, app, params = build_chain_app()
        for index in range(3):
            app.submit(f"prov-{index}", "sector_register", capacity=params.min_capacity)
        chain.produce_block()
        # 20 KiB at delay_per_size=1e-3 gives a ~20 s transfer deadline, i.e.
        # several 5 s blocks for the confirmations to land.
        app.submit("client", "file_add", size=20480, value=1, merkle_root=ROOT)
        block = chain.produce_block()
        file_id = block.receipts[0].result
        assert block.receipts[0].success
        for index, entry in app.protocol.alloc.entries_for_file(file_id):
            owner = app.protocol.sectors[entry.next].owner
            app.submit(owner, "file_confirm", file_id=file_id, index=index, sector_id=entry.next)
        chain.produce_block()
        # Advance enough blocks for CheckAlloc to fire.
        chain.run_epochs(6)
        assert app.protocol.files[file_id].state == FileState.NORMAL

    def test_failed_transaction_reports_error(self):
        chain, app, params = build_chain_app()
        app.submit("client", "file_add", size=0, value=1, merkle_root=ROOT)
        block = chain.produce_block()
        assert not block.receipts[0].success
        assert "size" in block.receipts[0].error

    def test_unknown_method_rejected(self):
        chain, app, _ = build_chain_app()
        app.submit("client", "not_a_method")
        block = chain.produce_block()
        assert not block.receipts[0].success

    def test_state_root_changes_with_protocol_state(self):
        chain, app, params = build_chain_app()
        root_before = app.state_root()
        app.submit("prov-0", "sector_register", capacity=params.min_capacity)
        chain.produce_block()
        assert app.state_root() != root_before

    def test_block_time_drives_protocol_clock(self):
        chain, app, params = build_chain_app()
        chain.run_epochs(3)
        assert app.protocol.now == pytest.approx(3 * chain.config.epoch_seconds)

    def test_deterministic_replay(self):
        """Two independent deployments fed the same transactions reach the
        same state root -- the property that makes the DSN a consensus app."""
        outcomes = []
        for _ in range(2):
            chain, app, params = build_chain_app()
            for index in range(3):
                app.submit(f"prov-{index}", "sector_register", capacity=params.min_capacity)
            chain.produce_block()
            app.submit("client", "file_add", size=2048, value=1, merkle_root=ROOT)
            chain.run_epochs(2)
            outcomes.append(app.state_root())
        assert outcomes[0] == outcomes[1]
