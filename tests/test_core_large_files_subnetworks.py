"""Tests for large-file segmentation and value-level subnetworks."""

import pytest

from repro.chain.ledger import Ledger
from repro.core.large_files import LargeFileCodec
from repro.core.params import ProtocolParams
from repro.core.subnetworks import SubnetworkRouter, ValueLevel


class TestLargeFileCodec:
    def test_small_file_does_not_need_segmentation(self):
        codec = LargeFileCodec(size_limit=1000, k=20)
        assert not codec.needs_segmentation(1000)
        assert codec.needs_segmentation(1001)

    def test_plan_segments_doubles_for_parity(self):
        codec = LargeFileCodec(size_limit=100, k=20)
        data_segments, total = codec.plan_segments(250)
        assert data_segments == 3
        assert total == 6

    def test_segment_value_formula(self):
        codec = LargeFileCodec(size_limit=100, k=20)
        assert codec.segment_value(100) == 10  # 2 * value / k
        assert codec.segment_value(1) == 1  # floor at 1

    def test_split_and_reassemble_all_segments(self):
        codec = LargeFileCodec(size_limit=64, k=4)
        data = bytes(range(256)) * 2
        segmented = codec.split(data, value=8)
        assert len(segmented.segments) == segmented.total_segments
        assert codec.reassemble(segmented, segmented.segments) == data

    def test_reassemble_with_half_segments_lost(self):
        codec = LargeFileCodec(size_limit=64, k=4)
        data = b"large file contents " * 20
        segmented = codec.split(data, value=8)
        surviving = segmented.segments[:: 2]  # keep every other segment (half)
        assert len(surviving) >= segmented.data_segments
        assert codec.reassemble(segmented, surviving) == data

    def test_too_few_segments_fails(self):
        codec = LargeFileCodec(size_limit=64, k=4)
        data = b"x" * 300
        segmented = codec.split(data, value=4)
        with pytest.raises(ValueError):
            codec.reassemble(segmented, segmented.segments[: segmented.data_segments - 1])

    def test_each_segment_fits_limit_and_has_root(self):
        codec = LargeFileCodec(size_limit=64, k=4)
        segmented = codec.split(b"y" * 500, value=4)
        for segment in segmented.segments:
            assert segment.size <= 64 + 16  # limit plus the length framing overhead
            assert len(segment.merkle_root) == 32

    def test_can_recover_predicate(self):
        codec = LargeFileCodec(size_limit=64, k=4)
        segmented = codec.split(b"z" * 200, value=4)
        assert codec.can_recover(segmented, range(segmented.data_segments))
        assert not codec.can_recover(segmented, range(segmented.data_segments - 1))

    def test_empty_file_rejected(self):
        codec = LargeFileCodec(size_limit=64, k=4)
        with pytest.raises(ValueError):
            codec.split(b"", value=1)


class TestValueLevels:
    def test_contains(self):
        level = ValueLevel("low", 1, 10)
        assert level.contains(1) and level.contains(10)
        assert not level.contains(11)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            ValueLevel("bad", 0, 10)
        with pytest.raises(ValueError):
            ValueLevel("bad", 10, 5)


class TestSubnetworkRouter:
    def make_router(self):
        levels = [ValueLevel("low", 1, 9), ValueLevel("high", 10, 1000)]
        params = ProtocolParams.small_test()
        router = SubnetworkRouter(levels, base_params=params, charge_fees=False)
        for level in ("low", "high"):
            for index in range(3):
                router.sector_register(level, f"{level}-prov-{index}", params.min_capacity)
        return router

    def test_overlapping_levels_rejected(self):
        with pytest.raises(ValueError):
            SubnetworkRouter([ValueLevel("a", 1, 10), ValueLevel("b", 10, 20)], charge_fees=False)

    def test_routes_by_value(self):
        router = self.make_router()
        low = router.file_add("client", 1000, 3, b"\x00" * 32)
        high = router.file_add("client", 1000, 50, b"\x01" * 32)
        assert low.level == "low"
        assert high.level == "high"

    def test_value_outside_levels_rejected(self):
        router = self.make_router()
        with pytest.raises(ValueError):
            router.level_for_value(10_000)

    def test_replica_count_stays_bounded_for_high_values(self):
        router = self.make_router()
        single = router.subnetwork("low").params
        replicas_single_network = single.replica_count(50 * single.min_value)
        replicas_routed = router.replica_count_for_value(50)
        assert replicas_routed < replicas_single_network

    def test_locations_accessible_through_router(self):
        router = self.make_router()
        routed = router.file_add("client", 1000, 3, b"\x02" * 32)
        locations = router.file_locations(routed)
        assert len(locations) == router.subnetwork(routed.level).params.replica_count(3)

    def test_advance_time_touches_all_subnetworks(self):
        router = self.make_router()
        router.advance_time(100.0)
        for protocol in router.subnetworks.values():
            assert protocol.now == 100.0

    def test_summary_has_entry_per_level(self):
        router = self.make_router()
        assert set(router.summary()) == {"low", "high"}
