"""Tests for the random beacon and the Reed-Solomon erasure code."""

import pytest

from repro.crypto.beacon import BeaconOutput, RandomBeacon
from repro.crypto.erasure import GF256, ReedSolomonCode, Shard


class TestBeacon:
    def test_outputs_deterministic(self):
        a = RandomBeacon(b"genesis")
        b = RandomBeacon(b"genesis")
        assert a.output(10).value == b.output(10).value

    def test_outputs_differ_per_round(self):
        beacon = RandomBeacon()
        assert beacon.output(1).value != beacon.output(2).value

    def test_verify_accepts_genuine_and_rejects_forged(self):
        beacon = RandomBeacon()
        genuine = beacon.output(5)
        assert beacon.verify(genuine)
        forged = BeaconOutput(round=5, value=b"\x00" * 32)
        assert not beacon.verify(forged)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            RandomBeacon().output(-1)

    def test_prng_expansion_is_domain_separated(self):
        beacon = RandomBeacon()
        a = beacon.prng_for_round(3, "sector-selection").random_bytes(16)
        b = beacon.prng_for_round(3, "refresh").random_bytes(16)
        assert a != b

    def test_out_of_order_access_consistent(self):
        beacon = RandomBeacon()
        late = beacon.output(50).value
        early = beacon.output(10).value
        fresh = RandomBeacon()
        assert fresh.output(10).value == early
        assert fresh.output(50).value == late


class TestGF256:
    def test_add_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100

    def test_mul_identity_and_zero(self):
        assert GF256.mul(1, 77) == 77
        assert GF256.mul(0, 77) == 0

    def test_inverse(self):
        for value in (1, 2, 3, 77, 255):
            assert GF256.mul(value, GF256.inv(value)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_division_consistent_with_multiplication(self):
        a, b = 87, 131
        assert GF256.mul(GF256.div(a, b), b) == a


class TestReedSolomon:
    def test_roundtrip_all_shards(self):
        code = ReedSolomonCode(4, 2)
        data = bytes(range(256)) * 3
        shards = code.encode(data)
        assert len(shards) == 6
        assert code.decode(shards) == data

    def test_roundtrip_with_only_data_shards(self):
        code = ReedSolomonCode(3, 3)
        data = b"hello erasure coding world"
        shards = code.encode(data)
        assert code.decode(shards[:3]) == data

    def test_roundtrip_with_parity_only_subset(self):
        code = ReedSolomonCode(3, 3)
        data = b"parity reconstruction test payload"
        shards = code.encode(data)
        subset = shards[3:]  # only parity shards
        assert code.decode(subset) == data

    def test_roundtrip_with_mixed_subset(self):
        code = ReedSolomonCode(4, 4)
        data = b"x" * 100 + b"y" * 57
        shards = code.encode(data)
        subset = [shards[0], shards[5], shards[2], shards[7]]
        assert code.decode(subset) == data

    def test_too_few_shards_raises(self):
        code = ReedSolomonCode(4, 2)
        shards = code.encode(b"some data")
        with pytest.raises(ValueError):
            code.decode(shards[:3])

    def test_empty_data_roundtrip(self):
        code = ReedSolomonCode(2, 2)
        shards = code.encode(b"")
        assert code.decode(shards[2:]) == b""

    def test_can_recover_predicate(self):
        code = ReedSolomonCode(3, 2)
        assert code.can_recover([0, 1, 2])
        assert code.can_recover([0, 3, 4])
        assert not code.can_recover([0, 1])
        assert not code.can_recover([0, 0, 0])

    def test_storage_overhead(self):
        assert ReedSolomonCode(4, 4).storage_overhead() == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCode(200, 100)

    def test_shard_index_out_of_range_rejected(self):
        code = ReedSolomonCode(2, 1)
        shards = code.encode(b"abc")
        bad = [Shard(index=9, data=shards[0].data)] + list(shards[1:])
        with pytest.raises(ValueError):
            code.decode(bad)
