"""CLI tests for the ``python -m repro`` front door."""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import main


class TestList:
    def test_lists_all_builtin_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("collision", "deposit", "robustness", "scalability", "table3", "table4"):
            assert name in out

    def test_json_dump_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        dump = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in dump}
        assert {"collision", "table3", "churn"} <= set(by_name)
        table3 = by_name["table3"]
        assert set(table3) == {"name", "description", "tags", "params"}
        rounds = table3["params"]["rounds"]
        assert rounds["default"] == 100
        assert rounds["type"] == "int"
        assert rounds["help"]
        # Tuple defaults serialise as JSON arrays.
        assert table3["params"]["modes"]["default"] == ["reallocate", "refresh"]

    def test_json_dump_validates_campaign_sweep_params(self, capsys):
        """The dump is the contract campaign specs validate against: every
        swept parameter in the shipped example exists in the dump."""
        from repro.campaign import load_campaign

        assert main(["list", "--json"]) == 0
        dump = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in dump}
        spec = load_campaign("examples/table3_campaign.toml")
        for entry in spec.entries:
            assert entry.scenario in by_name
            registered = set(by_name[entry.scenario]["params"])
            assert set(entry.params) <= registered
            assert set(entry.sweep) <= registered


class TestRun:
    def test_run_writes_manifest(self, tmp_path, capsys):
        out_path = tmp_path / "collision.json"
        code = main(
            [
                "run",
                "collision",
                "--seed",
                "3",
                "--set",
                "trials=8",
                "--set",
                "batches=2",
                "--set",
                "n_sectors=50",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        manifest = json.loads(out_path.read_text())
        assert manifest["scenario"] == "collision"
        assert manifest["seed"] == 3
        # 4 ratios x 2 batches
        assert len(manifest["rows"]) == 8
        out = capsys.readouterr().out
        assert "per-trial rows" in out
        assert "summary" in out

    def test_quiet_omits_trial_rows(self, capsys):
        code = main(
            ["run", "collision", "--quiet", "--set", "trials=4", "--set", "batches=1",
             "--set", "n_sectors=40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-trial rows" not in out
        assert "summary" in out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["run", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_override_syntax_is_an_error(self, capsys):
        assert main(["run", "collision", "--set", "oops"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_unknown_parameter_is_an_error(self, capsys):
        assert main(["run", "collision", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_uncoercible_value_is_an_error(self, capsys):
        assert main(["run", "collision", "--set", "trials=abc"]) == 2
        assert "invalid value 'abc'" in capsys.readouterr().err

    def test_zero_workers_is_an_error(self, capsys):
        assert main(["run", "collision", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err


class TestBench:
    def test_bench_reports_identical_rows(self, capsys):
        code = main(
            [
                "bench",
                "collision",
                "--workers",
                "2",
                "--set",
                "trials=8",
                "--set",
                "batches=2",
                "--set",
                "n_sectors=50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-trial rows identical: True" in out
        assert "speedup=" in out


class TestBenchBackendAll:
    _TINY_SEG = [
        "--set", "size_ratios=0.5", "--set", "limit_fractions=0.25",
        "--set", "n_files=4", "--set", "trials=1",
    ]

    def test_sweeps_every_backend_in_one_invocation(self, tmp_path, capsys):
        out_path = tmp_path / "backends.json"
        code = main(
            ["bench", "segmentation", "--backend", "all", "--seed", "2",
             *self._TINY_SEG, "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backends=reference,vectorized" in out
        assert "speedup_vs_reference" in out
        assert "per-trial rows identical across backends: True" in out
        artifact = json.loads(out_path.read_text())
        assert artifact["kind"] == "scenario_backend_sweep"
        assert set(artifact["backends"]) == {"reference", "vectorized"}
        for entry in artifact["backends"].values():
            assert entry["wall_seconds"] > 0
            assert "speedup_vs_reference" in entry
        assert artifact["rows_identical"] is True
        assert artifact["scenario"] == "segmentation"
        assert artifact["seed"] == 2

    def test_min_speedup_gate_can_fail(self, capsys):
        code = main(
            ["bench", "segmentation", "--backend", "all", "--min-speedup", "1000",
             *self._TINY_SEG]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "speedup gate" in out
        assert "FAIL" in out

    def test_all_conflicts_with_set_backend(self, capsys):
        code = main(
            ["bench", "segmentation", "--backend", "all",
             "--set", "backend=reference"]
        )
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_all_on_scenario_without_backend_param(self, capsys):
        assert main(["bench", "collision", "--backend", "all"]) == 2
        assert "no 'backend' parameter" in capsys.readouterr().err

    def test_unknown_backend_name_on_bench_is_an_error(self, capsys):
        assert main(["bench", "segmentation", "--backend", "cuda"]) == 2
        assert "unknown kernel backend" in capsys.readouterr().err

    def test_run_does_not_accept_all(self, capsys):
        """'all' is a bench-only sweep; run treats it as a backend name."""
        assert main(["run", "segmentation", "--backend", "all"]) == 2
        assert "unknown kernel backend" in capsys.readouterr().err


class TestBackendFlag:
    def test_backend_flag_lands_in_manifest(self, tmp_path, capsys):
        out_path = tmp_path / "robust.json"
        code = main(
            [
                "run", "robustness", "--quiet", "--backend", "reference",
                "--set", "lambdas=0.5", "--set", "n_sectors=50",
                "--set", "n_files=60", "--set", "k=3", "--set", "trials=1",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        manifest = json.loads(out_path.read_text())
        assert manifest["params"]["backend"] == "reference"

    def test_auto_resolves_to_concrete_backend(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        out_path = tmp_path / "robust.json"
        code = main(
            [
                "run", "robustness", "--quiet",
                "--set", "lambdas=0.5", "--set", "n_sectors=50",
                "--set", "n_files=60", "--set", "k=3", "--set", "trials=1",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert json.loads(out_path.read_text())["params"]["backend"] == "vectorized"

    def test_backend_flag_conflicting_with_set_is_an_error(self, capsys):
        code = main(
            ["run", "robustness", "--backend", "reference",
             "--set", "backend=vectorized"]
        )
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_unknown_backend_is_an_error(self, capsys):
        assert main(["run", "robustness", "--backend", "cuda"]) == 2
        assert "unknown kernel backend" in capsys.readouterr().err

    def test_backend_flag_on_scenario_without_backend_param(self, capsys):
        assert main(["run", "collision", "--backend", "reference"]) == 2
        assert "no parameter 'backend'" in capsys.readouterr().err


class TestCampaignMatrix:
    def _register_toy(self):
        from repro.runner.registry import register

        from campaign_testlib import campaign_test_specs

        for spec in campaign_test_specs():
            register(spec, replace=True)

    def test_matrix_expands_and_runs(self, tmp_path, capsys):
        self._register_toy()
        code = main(
            ["campaign", "run", "--matrix", "camp-alpha:scale=1,2,3",
             "--store", str(tmp_path / "store")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign=matrix-camp-alpha-scale" in out
        assert "cells=3" in out
        assert out.count("[run ]") == 3

    def test_matrix_with_seed_and_cache_hits(self, tmp_path, capsys):
        self._register_toy()
        store = str(tmp_path / "store")
        args = ["campaign", "run", "--matrix", "camp-alpha:scale=2,4",
                "--seed", "9", "--store", store]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache_hits=2/2" in out

    def test_matrix_validates_against_registry(self, tmp_path, capsys):
        code = main(
            ["campaign", "run", "--matrix", "table3:bogus=1,2",
             "--store", str(tmp_path / "store")]
        )
        assert code == 2
        assert "no parameter" in capsys.readouterr().err

    def test_matrix_unknown_scenario_is_an_error(self, tmp_path, capsys):
        code = main(
            ["campaign", "run", "--matrix", "nope:x=1",
             "--store", str(tmp_path / "store")]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_matrix_bad_syntax_is_an_error(self, capsys):
        for bad in ("camp-alpha", "camp-alpha:scale", "camp-alpha:scale=",
                    ":scale=1", "camp-alpha:=1"):
            assert main(["campaign", "run", "--matrix", bad]) == 2
            assert "--matrix expects" in capsys.readouterr().err

    def test_spec_and_matrix_together_is_an_error(self, capsys):
        code = main(
            ["campaign", "run", "examples/table3_campaign.toml",
             "--matrix", "camp-alpha:scale=1"]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_neither_spec_nor_matrix_is_an_error(self, capsys):
        assert main(["campaign", "run"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_seed_with_spec_file_is_an_error(self, capsys):
        code = main(
            ["campaign", "run", "examples/table3_campaign.toml", "--seed", "3"]
        )
        assert code == 2
        assert "--seed only applies" in capsys.readouterr().err
