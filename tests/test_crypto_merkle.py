"""Tests for Merkle trees and inclusion proofs."""

import pytest

from repro.crypto.merkle import MerkleProof, MerkleTree, chunk_bytes, merkle_root


class TestChunkBytes:
    def test_exact_multiple(self):
        chunks = chunk_bytes(b"aabb", 2)
        assert chunks == [b"aa", b"bb"]

    def test_remainder_chunk(self):
        chunks = chunk_bytes(b"aabbc", 2)
        assert chunks == [b"aa", b"bb", b"c"]

    def test_empty_input_single_empty_chunk(self):
        assert chunk_bytes(b"", 4) == [b""]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_bytes(b"abc", 0)


class TestMerkleTree:
    def test_single_leaf_root_differs_from_leaf_hash_prefixing(self):
        tree = MerkleTree([b"only"])
        assert tree.root == tree.leaf_hash(0)
        assert tree.leaf_count == 1

    def test_root_changes_with_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_changes_with_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_empty_leaves_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_from_data_matches_manual_chunks(self):
        data = bytes(range(200))
        assert MerkleTree.from_data(data, 64).root == MerkleTree(chunk_bytes(data, 64)).root

    @pytest.mark.parametrize("leaf_count", [1, 2, 3, 4, 5, 8, 13, 16, 31])
    def test_all_proofs_verify(self, leaf_count):
        leaves = [bytes([i]) * 10 for i in range(leaf_count)]
        tree = MerkleTree(leaves)
        for index in range(leaf_count):
            proof = tree.prove(index)
            assert proof.verify(tree.root)

    def test_proof_fails_against_wrong_root(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        other = MerkleTree([b"a", b"b", b"d"])
        proof = tree.prove(2)
        assert not proof.verify(other.root)

    def test_tampered_proof_path_fails(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        proof = tree.prove(1)
        tampered = MerkleProof(
            leaf_index=proof.leaf_index,
            leaf_hash=proof.leaf_hash,
            path=tuple(bytes(32) for _ in proof.path),
            directions=proof.directions,
        )
        assert not tampered.verify(tree.root)

    def test_prove_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.prove(1)

    def test_merkle_root_helper(self):
        assert merkle_root([b"a", b"b"]) == MerkleTree([b"a", b"b"]).root
