"""Tests for the token ledger and gas metering."""

import pytest

from repro.chain.gas import GasMeter, GasSchedule, OutOfGasError
from repro.chain.ledger import InsufficientFundsError, Ledger, LedgerError


class TestLedgerBasics:
    def test_mint_and_balance(self, ledger):
        ledger.mint("alice", 100)
        assert ledger.balance("alice") == 100
        assert ledger.total_minted == 100

    def test_unknown_account_balance_is_zero(self, ledger):
        assert ledger.balance("nobody") == 0
        assert ledger.escrowed("nobody") == 0

    def test_transfer_moves_funds(self, ledger):
        ledger.mint("alice", 100)
        ledger.transfer("alice", "bob", 40)
        assert ledger.balance("alice") == 60
        assert ledger.balance("bob") == 40

    def test_transfer_insufficient_funds(self, ledger):
        ledger.mint("alice", 10)
        with pytest.raises(InsufficientFundsError):
            ledger.transfer("alice", "bob", 11)

    def test_amounts_must_be_positive_integers(self, ledger):
        ledger.mint("alice", 10)
        with pytest.raises(LedgerError):
            ledger.transfer("alice", "bob", 0)
        with pytest.raises(TypeError):
            ledger.transfer("alice", "bob", 1.5)  # type: ignore[arg-type]

    def test_burn_reduces_supply(self, ledger):
        ledger.mint("alice", 100)
        ledger.burn("alice", 30)
        assert ledger.balance("alice") == 70
        assert ledger.total_burned == 30
        assert ledger.check_conservation()


class TestLedgerEscrow:
    def test_lock_release_roundtrip(self, ledger):
        ledger.mint("prov", 100)
        ledger.lock("prov", 60)
        assert ledger.balance("prov") == 40
        assert ledger.escrowed("prov") == 60
        ledger.release("prov", 60)
        assert ledger.balance("prov") == 100

    def test_lock_more_than_balance(self, ledger):
        ledger.mint("prov", 10)
        with pytest.raises(InsufficientFundsError):
            ledger.lock("prov", 11)

    def test_release_more_than_escrowed(self, ledger):
        ledger.mint("prov", 100)
        ledger.lock("prov", 10)
        with pytest.raises(InsufficientFundsError):
            ledger.release("prov", 11)

    def test_confiscate_moves_escrow_to_recipient(self, ledger):
        ledger.mint("prov", 100)
        ledger.lock("prov", 50)
        ledger.confiscate("prov", 50, recipient="pool")
        assert ledger.escrowed("prov") == 0
        assert ledger.balance("pool") == 50
        assert ledger.check_conservation()

    def test_confiscate_defaults_to_network(self, ledger):
        ledger.mint("prov", 100)
        ledger.lock("prov", 50)
        ledger.confiscate("prov", 50)
        assert ledger.balance(Ledger.NETWORK_ADDRESS) == 50

    def test_conservation_holds_across_mixed_operations(self, ledger):
        ledger.mint("a", 1000)
        ledger.mint("b", 500)
        ledger.transfer("a", "b", 200)
        ledger.lock("b", 300)
        ledger.confiscate("b", 100)
        ledger.release("b", 200)
        ledger.burn("a", 50)
        assert ledger.check_conservation()


class TestGasSchedule:
    def test_known_operation_cost(self):
        schedule = GasSchedule()
        assert schedule.cost("file_add") == schedule.file_add
        assert schedule.fee("file_add") == schedule.file_add * schedule.gas_price

    def test_unknown_operation_raises(self):
        with pytest.raises(KeyError):
            GasSchedule().cost("not_an_op")

    def test_prepaid_cycle_fee_positive_and_bounded(self):
        schedule = GasSchedule()
        fee = schedule.prepaid_cycle_fee(3)
        assert fee > 0
        with pytest.raises(ValueError):
            schedule.prepaid_cycle_fee(0)


class TestGasMeter:
    def test_charges_accumulate(self):
        meter = GasMeter(limit=10_000)
        meter.charge("file_add")
        meter.charge("file_prove", multiplier=2)
        assert meter.used == GasSchedule().file_add + 2 * GasSchedule().file_prove
        assert meter.remaining == meter.limit - meter.used

    def test_out_of_gas(self):
        meter = GasMeter(limit=100)
        with pytest.raises(OutOfGasError):
            meter.charge("file_add")

    def test_breakdown_by_label(self):
        meter = GasMeter(limit=10_000)
        meter.charge("file_add")
        meter.charge("file_add")
        assert meter.breakdown()["file_add"] == 2 * GasSchedule().file_add

    def test_invalid_limit_and_multiplier(self):
        with pytest.raises(ValueError):
            GasMeter(limit=0)
        meter = GasMeter(limit=100)
        with pytest.raises(ValueError):
            meter.charge("file_add", multiplier=0)
