"""Registry tests: registration, lookup errors, parameter resolution."""

from __future__ import annotations

import pytest

from repro.runner.registry import (
    DuplicateScenarioError,
    ParamSpec,
    ScenarioError,
    ScenarioSpec,
    UnknownScenarioError,
    coerce_value,
    get_scenario,
    list_scenarios,
    load_builtin_scenarios,
    register,
    resolve_params,
    scenario,
    unregister,
)


def _noop_trial(task):
    return {"ok": True}


def _single_trial(params):
    return [{}]


def _make_spec(name: str, **kwargs) -> ScenarioSpec:
    defaults = dict(
        name=name,
        description="test scenario",
        trial_fn=_noop_trial,
        build_trials=_single_trial,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


@pytest.fixture
def temp_scenario():
    """Register a throwaway scenario and clean it up afterwards."""
    spec = register(_make_spec("temp-scenario"), replace=True)
    yield spec
    unregister("temp-scenario")


class TestRegistration:
    def test_register_and_lookup(self, temp_scenario):
        assert get_scenario("temp-scenario") is temp_scenario

    def test_duplicate_registration_raises(self, temp_scenario):
        with pytest.raises(DuplicateScenarioError):
            register(_make_spec("temp-scenario"))

    def test_replace_is_idempotent(self, temp_scenario):
        replacement = register(_make_spec("temp-scenario"), replace=True)
        assert get_scenario("temp-scenario") is replacement

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioError):
            register(_make_spec(""))

    def test_unknown_lookup_raises_with_known_names(self, temp_scenario):
        with pytest.raises(UnknownScenarioError, match="temp-scenario"):
            get_scenario("definitely-not-registered")

    def test_decorator_registers_and_returns_function(self):
        @scenario(
            "temp-decorated",
            "decorated scenario",
            build_trials=_single_trial,
            params={"n": ParamSpec(3, "count")},
        )
        def trial(task):
            return {"ok": True}

        try:
            spec = get_scenario("temp-decorated")
            assert spec.trial_fn is trial
            assert spec.params["n"].default == 3
            assert trial({"seed": 0}) == {"ok": True}
        finally:
            unregister("temp-decorated")

    def test_list_scenarios_sorted(self, temp_scenario):
        names = [spec.name for spec in list_scenarios()]
        assert names == sorted(names)
        assert "temp-scenario" in names


class TestBuiltinScenarios:
    def test_all_six_paper_experiments_registered(self):
        names = {spec.name for spec in load_builtin_scenarios()}
        assert {
            "collision",
            "deposit",
            "robustness",
            "scalability",
            "table3",
            "table4",
        } <= names


class TestParamResolution:
    def _spec(self):
        return _make_spec(
            "temp-params",
            params={
                "count": ParamSpec(5, "an int"),
                "rate": ParamSpec(0.5, "a float"),
                "fast": ParamSpec(True, "a bool"),
                "label": ParamSpec("abc", "a string"),
                "grid": ParamSpec((1, 2, 3), "an int tuple"),
            },
        )

    def test_defaults_without_overrides(self):
        resolved = resolve_params(self._spec())
        assert resolved == {
            "count": 5,
            "rate": 0.5,
            "fast": True,
            "label": "abc",
            "grid": (1, 2, 3),
        }

    def test_string_overrides_coerced_to_schema_types(self):
        resolved = resolve_params(
            self._spec(),
            {"count": "7", "rate": "0.25", "fast": "false", "grid": "4,5"},
        )
        assert resolved["count"] == 7
        assert resolved["rate"] == 0.25
        assert resolved["fast"] is False
        assert resolved["grid"] == (4, 5)

    def test_typed_overrides_pass_through(self):
        resolved = resolve_params(self._spec(), {"count": 9, "grid": (8,)})
        assert resolved["count"] == 9
        assert resolved["grid"] == (8,)

    def test_mistyped_override_rejected_at_resolution(self):
        """Already-typed values are checked too, so every entry point
        (Python API, campaign specs) fails fast instead of mid-trial."""
        with pytest.raises(ScenarioError, match="expects int"):
            resolve_params(self._spec(), {"count": 2.5})
        with pytest.raises(ScenarioError, match="expects float"):
            resolve_params(self._spec(), {"rate": (1, 2)})
        with pytest.raises(ScenarioError, match="expects bool"):
            resolve_params(self._spec(), {"fast": 1})

    def test_friendly_widenings(self):
        resolved = resolve_params(self._spec(), {"rate": 1, "grid": [4, 5]})
        assert resolved["rate"] == 1.0
        assert isinstance(resolved["rate"], float)
        assert resolved["grid"] == (4, 5)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ScenarioError, match="no parameter"):
            resolve_params(self._spec(), {"bogus": "1"})

    def test_bad_boolean_rejected(self):
        with pytest.raises(ValueError):
            coerce_value("maybe", ParamSpec(True))
