"""Tests for the workload pack: churn, retrieval_load, segmentation,
lifecycle_churn."""

from __future__ import annotations

import pytest

from repro.runner.executor import derive_trial_seed, run_scenario
from repro.runner.registry import get_scenario, load_builtin_scenarios, resolve_params
from repro.runner.results import jsonify
from repro.scenarios.churn import run_churn_trial
from repro.scenarios.lifecycle_churn import run_lifecycle_churn_trial
from repro.scenarios.retrieval import run_retrieval_trial
from repro.scenarios.segmentation import run_segmentation_trial


@pytest.fixture(autouse=True)
def _load_registry():
    load_builtin_scenarios()


class TestRegistration:
    def test_all_ten_scenarios_registered(self):
        names = {spec.name for spec in load_builtin_scenarios()}
        assert {
            "table3",
            "table4",
            "collision",
            "robustness",
            "deposit",
            "scalability",
            "churn",
            "retrieval_load",
            "segmentation",
            "lifecycle_churn",
        } <= names

    def test_workload_tags(self):
        for name in ("churn", "retrieval_load", "segmentation", "lifecycle_churn"):
            assert "workload" in get_scenario(name).tags

    def test_trial_grids(self):
        churn = get_scenario("churn")
        assert len(churn.build_trials(resolve_params(churn, {"trials": 4}))) == 4

        retrieval = get_scenario("retrieval_load")
        trials = retrieval.build_trials(
            resolve_params(retrieval, {"rates": (1.0, 2.0), "trials": 3})
        )
        assert len(trials) == 6
        assert {trial["rate_per_s"] for trial in trials} == {1.0, 2.0}

        segmentation = get_scenario("segmentation")
        trials = segmentation.build_trials(
            resolve_params(
                segmentation,
                {"size_ratios": (0.5, 2.0), "limit_fractions": (0.25,), "trials": 2},
            )
        )
        assert len(trials) == 4


def _task(name, index=0, seed_root=0, **overrides):
    """A trial task the way the executor would construct it."""
    spec = get_scenario(name)
    params = resolve_params(spec, overrides)
    trial = dict(spec.build_trials(params)[index])
    trial["trial"] = index
    trial["seed"] = derive_trial_seed(seed_root, name, index)
    trial["root_seed"] = seed_root
    return trial


TINY_CHURN = dict(providers=3, sectors_per_provider=1, clients=1, files=2, cycles=3, trials=1)
TINY_RETRIEVAL = dict(
    providers=4, clients=2, files=4, requests=10, rates=(4.0,), trials=1, mean_kib=8
)
TINY_SEG = dict(size_ratios=(2.0,), limit_fractions=(0.5,), n_files=6, trials=1)
#: Flash crowds and the correlated-failure generator stay ON in the tiny
#: shape: the identity tests must hold with every event generator active.
TINY_LIFECYCLE = dict(
    providers=6,
    regions=2,
    files=8,
    horizon_s=150.0,
    mtbf_s=120.0,
    mttr_s=30.0,
    retrieval_rate=0.5,
    flash_crowds=1,
    regional_failures=1,
    departures=1,
    trials=1,
)


class TestChurn:
    def test_trial_reports_recovery_metrics(self):
        row = run_churn_trial(_task("churn", **TINY_CHURN))
        assert row["files_stored"] == 2
        assert 0.0 <= row["retrievable_fraction"] <= 1.0
        assert 0.0 <= row["replica_health"] <= 1.0
        assert row["providers"] >= row["healthy_providers"]
        assert row["joins"] + row["leaves"] + row["crashes"] >= 0

    def test_trial_is_deterministic_in_seed(self):
        assert run_churn_trial(_task("churn", **TINY_CHURN)) == run_churn_trial(
            _task("churn", **TINY_CHURN)
        )

    def test_no_churn_means_no_loss(self):
        task = _task(
            "churn", **dict(TINY_CHURN, join_rate=0.0, leave_rate=0.0, crash_rate=0.0)
        )
        row = run_churn_trial(task)
        assert row["crashes"] == row["leaves"] == row["joins"] == 0
        assert row["files_lost"] == 0
        assert row["retrievable_fraction"] == 1.0
        assert row["replica_health"] == 1.0

    def test_scenario_end_to_end_with_summary(self):
        manifest = run_scenario("churn", TINY_CHURN, workers=1, seed=1)
        assert manifest.trial_count == 1
        assert manifest.summary  # aggregator produced the mean row
        assert "retrievable_fraction_mean" in manifest.summary[0]


class TestRetrievalLoad:
    def test_trial_serves_requests_and_measures_latency(self):
        row = run_retrieval_trial(_task("retrieval_load", **TINY_RETRIEVAL))
        assert row["requests"] == 10
        assert row["served"] + row["unserved"] == 10
        assert row["served"] > 0
        assert row["latency_p95_s"] >= row["latency_p50_s"] >= 0
        assert row["dht_hops_mean"] >= 1
        assert row["bytes_served"] > 0

    def test_trial_is_deterministic_in_seed(self):
        task = _task("retrieval_load", **TINY_RETRIEVAL)
        assert run_retrieval_trial(task) == run_retrieval_trial(dict(task))

    def test_all_selfish_providers_serve_nothing(self):
        task = _task(
            "retrieval_load", **dict(TINY_RETRIEVAL, selfish_fraction=1.0)
        )
        row = run_retrieval_trial(task)
        assert row["served"] == 0
        assert row["unserved"] == row["requests"]
        assert row["bytes_served"] == 0
        # Unserved requests are deadline misses, not free passes.
        assert row["miss_rate"] == 1.0

    def test_higher_rate_does_not_lower_latency(self):
        slow = run_retrieval_trial(
            _task("retrieval_load", **dict(TINY_RETRIEVAL, rates=(0.5,), requests=20))
        )
        fast = run_retrieval_trial(
            _task("retrieval_load", **dict(TINY_RETRIEVAL, rates=(50.0,), requests=20))
        )
        assert fast["latency_mean_s"] >= slow["latency_mean_s"]

    def test_scenario_end_to_end_groups_by_rate(self):
        manifest = run_scenario(
            "retrieval_load",
            dict(TINY_RETRIEVAL, rates=(2.0, 8.0)),
            workers=1,
            seed=3,
        )
        assert manifest.trial_count == 2
        assert [row["rate_per_s"] for row in manifest.summary] == [2.0, 8.0]


class TestLifecycleChurn:
    def test_trial_reports_lifecycle_and_latency_metrics(self):
        row = run_lifecycle_churn_trial(_task("lifecycle_churn", **TINY_LIFECYCLE))
        assert row["files"] == 8
        assert row["files_placed"] + row["placement_failures"] <= row["files"]
        assert row["served"] + row["unserved"] == row["retrievals"]
        assert row["latency_p99_s"] >= row["latency_p50_s"] >= 0.0
        assert 0.0 <= row["miss_rate"] <= 1.0
        assert row["min_free_slots"] >= 0
        assert row["events_processed"] > 0

    def test_generators_fire_in_tiny_shape(self):
        row = run_lifecycle_churn_trial(_task("lifecycle_churn", **TINY_LIFECYCLE))
        assert row["regional_failures"] == 1
        assert row["provider_crashes"] > 0
        assert row["flash_retrievals"] > 0
        assert row["events_cancelled"] > 0

    def test_trial_is_deterministic_in_seed(self):
        task = _task("lifecycle_churn", **TINY_LIFECYCLE)
        assert run_lifecycle_churn_trial(task) == run_lifecycle_churn_trial(task)

    def test_quiet_shape_keeps_every_file(self):
        task = _task(
            "lifecycle_churn",
            **dict(
                TINY_LIFECYCLE,
                mtbf_s=1e9,
                regional_failures=0,
                departures=0,
                flash_crowds=0,
            ),
        )
        row = run_lifecycle_churn_trial(task)
        assert row["provider_crashes"] == 0
        assert row["files_lost"] == 0
        assert row["files_surviving"] == row["files_placed"]

    def test_scenario_end_to_end_with_summary(self):
        manifest = run_scenario("lifecycle_churn", TINY_LIFECYCLE, workers=1, seed=1)
        assert manifest.trial_count == 1
        assert "latency_p99_s_mean" in manifest.summary[0]


class TestBackendAndPoolIdentity:
    """Regression pack for the sampler kernelisation: end-to-end scenario
    rows must be byte-identical across kernel backends and across serial
    vs pooled execution."""

    TRIAL_FNS = {
        "churn": (run_churn_trial, TINY_CHURN),
        "retrieval_load": (run_retrieval_trial, TINY_RETRIEVAL),
        "segmentation": (run_segmentation_trial, TINY_SEG),
        "lifecycle_churn": (run_lifecycle_churn_trial, TINY_LIFECYCLE),
    }

    @pytest.mark.parametrize("name", sorted(TRIAL_FNS))
    def test_trial_rows_identical_across_backends(self, name):
        trial_fn, tiny = self.TRIAL_FNS[name]
        rows = {
            backend: trial_fn(_task(name, seed_root=4, **tiny, backend=backend))
            for backend in ("reference", "vectorized")
        }
        assert rows["reference"] == rows["vectorized"]

    @pytest.mark.parametrize("name", sorted(TRIAL_FNS))
    def test_manifest_rows_identical_across_backends(self, name):
        _, tiny = self.TRIAL_FNS[name]
        manifests = {
            backend: run_scenario(
                name, dict(tiny, backend=backend), workers=1, seed=6
            )
            for backend in ("reference", "vectorized")
        }
        assert jsonify(manifests["reference"].rows) == jsonify(
            manifests["vectorized"].rows
        )
        for backend, manifest in manifests.items():
            assert manifest.params["backend"] == backend

    @pytest.mark.parametrize("name", sorted(TRIAL_FNS))
    def test_serial_and_pooled_runs_identical(self, name):
        _, tiny = self.TRIAL_FNS[name]
        overrides = dict(tiny, trials=2)
        serial = run_scenario(name, overrides, workers=1, seed=9)
        pooled = run_scenario(name, overrides, workers=2, seed=9)
        assert serial.trial_rows_equal(pooled)

    def test_campaign_backend_sweep_serial_vs_pooled(self, tmp_path):
        """A campaign sweeping the backend axis: pooled execution matches
        serial execution cell for cell, and within each run the two
        backend cells carry identical rows."""
        from repro.campaign import plan_campaign, run_campaign
        from repro.campaign.spec import CampaignSpec, ScenarioEntry
        from repro.campaign.store import ResultStore

        spec = CampaignSpec(
            name="backend-sweep",
            entries=(
                ScenarioEntry(
                    scenario="churn",
                    params=dict(TINY_CHURN),
                    sweep={"backend": ("reference", "vectorized")},
                    seeds=(3,),
                ),
            ),
        )
        assert len(plan_campaign(spec)) == 2
        results = {}
        for label, workers in (("serial", 1), ("pooled", 2)):
            store = ResultStore(tmp_path / label)
            outcome = run_campaign(spec, store, workers=workers)
            results[label] = {
                cell.cell.params["backend"]: jsonify(cell.manifest.rows)
                for cell in outcome.outcomes
            }
        assert results["serial"] == results["pooled"]
        for rows_by_backend in results.values():
            assert rows_by_backend["reference"] == rows_by_backend["vectorized"]


class TestSegmentation:
    def test_trial_metrics(self):
        row = run_segmentation_trial(_task("segmentation", **TINY_SEG))
        assert row["roundtrip_ok"] is True
        assert row["coverage_min"] >= 1.0
        assert row["rs_n_mean"] >= row["rs_k_mean"] >= 1.0
        assert 1.0 <= row["overhead"] <= 2.5
        assert 0.0 <= row["alloc_fail_seg"] <= row["alloc_fail_raw"] <= 1.0

    def test_trial_is_deterministic_in_seed(self):
        task = _task("segmentation", **TINY_SEG)
        assert run_segmentation_trial(task) == run_segmentation_trial(dict(task))

    def test_oversized_files_fail_without_segmentation(self):
        row = run_segmentation_trial(
            _task("segmentation", **dict(TINY_SEG, size_ratios=(8.0,)))
        )
        # Whole files larger than a sector can never be placed raw.
        assert row["alloc_fail_raw"] > 0.5
        assert row["alloc_fail_seg"] < 0.1

    def test_scenario_end_to_end_marks_coverage(self):
        manifest = run_scenario("segmentation", TINY_SEG, workers=1, seed=2)
        assert manifest.summary
        assert all(row["covered"] for row in manifest.summary)
        # The RS round-trip integrity check surfaces in the summary.
        assert all(row["roundtrip_ok"] is True for row in manifest.summary)
