"""Aggregation tests: streaming moments against known inputs."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.runner.aggregate import StreamingAggregator, format_table, summarize


class TestStreamingAggregator:
    def test_known_inputs(self):
        aggregator = StreamingAggregator().extend([1.0, 2.0, 3.0, 4.0])
        assert aggregator.count == 4
        assert aggregator.mean == pytest.approx(2.5)
        assert aggregator.variance() == pytest.approx(5.0 / 3.0)
        assert aggregator.stddev() == pytest.approx(math.sqrt(5.0 / 3.0))
        assert aggregator.minimum == 1.0
        assert aggregator.maximum == 4.0

    def test_matches_statistics_module(self):
        values = [0.13, 2.7, -1.4, 3.14, 0.0, 8.25, -2.5]
        aggregator = StreamingAggregator().extend(values)
        assert aggregator.mean == pytest.approx(statistics.fmean(values))
        assert aggregator.stddev() == pytest.approx(statistics.stdev(values))

    def test_ci95_halfwidth(self):
        values = [1.0, 2.0, 3.0, 4.0]
        aggregator = StreamingAggregator().extend(values)
        expected = 1.959963984540054 * statistics.stdev(values) / math.sqrt(4)
        assert aggregator.ci95_halfwidth() == pytest.approx(expected)

    def test_empty_and_single_sample(self):
        empty = StreamingAggregator()
        assert empty.count == 0
        assert empty.mean == 0.0
        assert empty.stddev() == 0.0
        single = StreamingAggregator().extend([42.0])
        assert single.mean == 42.0
        assert single.stddev() == 0.0
        assert single.ci95_halfwidth() == 0.0

    def test_merge_equals_single_pass(self):
        left_values = [1.0, 5.0, 2.5]
        right_values = [7.0, -3.0, 0.5, 9.0]
        merged = (
            StreamingAggregator()
            .extend(left_values)
            .merge(StreamingAggregator().extend(right_values))
        )
        single = StreamingAggregator().extend(left_values + right_values)
        assert merged.count == single.count
        assert merged.mean == pytest.approx(single.mean)
        assert merged.variance() == pytest.approx(single.variance())
        assert merged.minimum == single.minimum
        assert merged.maximum == single.maximum

    def test_merge_with_empty(self):
        values = [2.0, 4.0]
        merged = StreamingAggregator().extend(values).merge(StreamingAggregator())
        assert merged.count == 2
        assert merged.mean == pytest.approx(3.0)
        other = StreamingAggregator().merge(StreamingAggregator().extend(values))
        assert other.mean == pytest.approx(3.0)

    def test_as_row_prefixing(self):
        row = StreamingAggregator().extend([1.0, 3.0]).as_row(prefix="loss")
        assert row["loss_n"] == 2
        assert row["loss_mean"] == pytest.approx(2.0)
        assert set(row) == {
            "loss_n",
            "loss_mean",
            "loss_stddev",
            "loss_ci95",
            "loss_min",
            "loss_max",
        }


class TestSummarize:
    ROWS = [
        {"group": "a", "value": 1.0},
        {"group": "a", "value": 3.0},
        {"group": "b", "value": 10.0},
        {"group": "b", "value": 20.0},
        {"group": "b", "value": 30.0},
    ]

    def test_grouped_statistics(self):
        summary = summarize(self.ROWS, group_by=("group",), values=("value",))
        assert len(summary) == 2
        by_group = {row["group"]: row for row in summary}
        assert by_group["a"]["value_n"] == 2
        assert by_group["a"]["value_mean"] == pytest.approx(2.0)
        assert by_group["b"]["value_mean"] == pytest.approx(20.0)
        assert by_group["b"]["value_stddev"] == pytest.approx(10.0)
        assert by_group["b"]["value_max"] == 30.0

    def test_first_seen_group_order(self):
        summary = summarize(self.ROWS, group_by=("group",), values=("value",))
        assert [row["group"] for row in summary] == ["a", "b"]

    def test_missing_values_skipped(self):
        rows = self.ROWS + [{"group": "a"}]
        summary = summarize(rows, group_by=("group",), values=("value",))
        assert summary[0]["value_n"] == 2

    def test_format_table_shared_with_metrics(self):
        from repro.sim import metrics

        assert format_table is metrics.format_table
        rendered = format_table(
            summarize(self.ROWS, group_by=("group",), values=("value",))
        )
        assert "value_mean" in rendered
