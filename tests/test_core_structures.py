"""Tests for sector records, file descriptors, allocation table, pending list."""

import pytest

from repro.core.allocation import AllocEntry, AllocState, AllocationTable
from repro.core.file_descriptor import FileDescriptor, FileState
from repro.core.pending import PendingList
from repro.core.sector import SectorRecord, SectorState


class TestSectorRecord:
    def test_reserve_release_roundtrip(self):
        record = SectorRecord(owner="p", sector_id="p#0", capacity=100, free_capacity=100)
        record.reserve(40)
        assert record.free_capacity == 60
        assert record.used_capacity == 40
        assert record.stored_replicas == 1
        record.release(40)
        assert record.free_capacity == 100
        assert record.stored_replicas == 0

    def test_reserve_beyond_free_rejected(self):
        record = SectorRecord(owner="p", sector_id="p#0", capacity=100, free_capacity=10)
        with pytest.raises(ValueError):
            record.reserve(11)

    def test_release_beyond_capacity_rejected(self):
        record = SectorRecord(owner="p", sector_id="p#0", capacity=100, free_capacity=100)
        with pytest.raises(ValueError):
            record.release(1)

    def test_state_predicates(self):
        record = SectorRecord(owner="p", sector_id="p#0", capacity=100, free_capacity=100)
        assert record.accepts_new_files
        record.state = SectorState.DISABLED
        assert not record.accepts_new_files
        assert record.is_drained
        record.stored_replicas = 2
        assert not record.is_drained

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SectorRecord(owner="p", sector_id="x", capacity=0, free_capacity=0)
        with pytest.raises(ValueError):
            SectorRecord(owner="p", sector_id="x", capacity=10, free_capacity=11)


class TestFileDescriptor:
    def test_valid_descriptor(self):
        fd = FileDescriptor(
            file_id=1, owner="c", size=10, value=2, merkle_root=b"\x00" * 32, replica_count=6
        )
        assert fd.is_active
        assert not fd.needs_storage
        fd.state = FileState.NORMAL
        assert fd.needs_storage
        assert "file#1" in fd.describe()

    def test_terminal_states_not_active(self):
        fd = FileDescriptor(
            file_id=1, owner="c", size=10, value=1, merkle_root=b"", replica_count=1
        )
        for state in (FileState.DISCARDED, FileState.LOST, FileState.FAILED):
            fd.state = state
            assert not fd.is_active

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FileDescriptor(file_id=1, owner="c", size=-1, value=1, merkle_root=b"", replica_count=1)
        with pytest.raises(ValueError):
            FileDescriptor(file_id=1, owner="c", size=1, value=0, merkle_root=b"", replica_count=1)
        with pytest.raises(ValueError):
            FileDescriptor(file_id=1, owner="c", size=1, value=1, merkle_root=b"", replica_count=0)


class TestAllocationTable:
    def test_set_get_and_membership(self):
        table = AllocationTable()
        entry = AllocEntry(prev="s1", state=AllocState.NORMAL)
        table.set(1, 0, entry)
        assert table.get(1, 0) is entry
        assert table.has(1, 0)
        assert table.try_get(1, 1) is None
        assert len(table) == 1

    def test_entries_for_file_ordered(self):
        table = AllocationTable()
        for index in (2, 0, 1):
            table.set(5, index, AllocEntry(prev=f"s{index}"))
        indices = [index for index, _ in table.entries_for_file(5)]
        assert indices == [0, 1, 2]

    def test_entries_on_sector_matches_prev_and_next(self):
        table = AllocationTable()
        table.set(1, 0, AllocEntry(prev="sA"))
        table.set(1, 1, AllocEntry(prev="sB", next="sA"))
        table.set(2, 0, AllocEntry(prev="sC"))
        on_a = table.entries_on_sector("sA")
        assert {(fid, idx) for fid, idx, _ in on_a} == {(1, 0), (1, 1)}

    def test_file_is_lost_requires_all_corrupted(self):
        table = AllocationTable()
        table.set(1, 0, AllocEntry(prev="sA", state=AllocState.CORRUPTED))
        table.set(1, 1, AllocEntry(prev="sB", state=AllocState.NORMAL))
        assert not table.file_is_lost(1)
        table.get(1, 1).state = AllocState.CORRUPTED
        assert table.file_is_lost(1)

    def test_file_is_lost_false_for_unknown_file(self):
        assert not AllocationTable().file_is_lost(42)

    def test_remove_file(self):
        table = AllocationTable()
        table.set(1, 0, AllocEntry())
        table.set(1, 1, AllocEntry())
        table.set(2, 0, AllocEntry())
        assert table.remove_file(1) == 2
        assert len(table) == 1

    def test_replica_locations(self):
        table = AllocationTable()
        table.set(1, 0, AllocEntry(prev="sA", state=AllocState.NORMAL))
        table.set(1, 1, AllocEntry(prev=None, next="sB", state=AllocState.ALLOC))
        assert table.replica_locations(1) == ["sA", None]


class TestPendingList:
    def test_tasks_pop_in_time_order(self):
        pending = PendingList()
        pending.schedule(5.0, "b")
        pending.schedule(1.0, "a")
        pending.schedule(3.0, "c")
        due = pending.pop_due(10.0)
        assert [task.kind for task in due] == ["a", "c", "b"]

    def test_same_time_preserves_scheduling_order(self):
        pending = PendingList()
        first = pending.schedule(2.0, "first")
        second = pending.schedule(2.0, "second")
        due = pending.pop_due(2.0)
        assert [task.kind for task in due] == ["first", "second"]
        assert first.sequence < second.sequence

    def test_pop_due_respects_now(self):
        pending = PendingList()
        pending.schedule(1.0, "early")
        pending.schedule(5.0, "late")
        assert [t.kind for t in pending.pop_due(2.0)] == ["early"]
        assert len(pending) == 1

    def test_cancel_skips_task(self):
        pending = PendingList()
        task = pending.schedule(1.0, "cancelled")
        pending.schedule(2.0, "kept")
        pending.cancel(task)
        assert [t.kind for t in pending.pop_due(5.0)] == ["kept"]

    def test_peek_time_and_is_empty(self):
        pending = PendingList()
        assert pending.peek_time() is None
        assert pending.is_empty()
        pending.schedule(4.0, "x")
        assert pending.peek_time() == 4.0
        assert not pending.is_empty()

    def test_payload_carried(self):
        pending = PendingList()
        pending.schedule(1.0, "task", file_id=7, index=2)
        task = pending.pop_due(1.0)[0]
        assert task.payload == {"file_id": 7, "index": 2}
        assert "task" in task.describe()

    def test_tasks_snapshot_ordered(self):
        pending = PendingList()
        pending.schedule(3.0, "c")
        pending.schedule(1.0, "a")
        assert [t.kind for t in pending.tasks()] == ["a", "c"]
