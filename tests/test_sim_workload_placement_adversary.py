"""Tests for workload generation, the placement engine and adversary models."""

import numpy as np
import pytest

from repro.sim.adversary import (
    GreedyCapacityAdversary,
    RandomCapacityAdversary,
    evaluate_loss,
)
from repro.sim.placement import PlacementExperiment
from repro.sim.workload import FileSizeDistribution, WorkloadGenerator


class TestWorkloadDistributions:
    @pytest.mark.parametrize("distribution", list(FileSizeDistribution))
    def test_sizes_positive_and_right_count(self, distribution):
        generator = WorkloadGenerator(seed=1)
        sizes = generator.backup_sizes(distribution, 5000)
        assert sizes.shape == (5000,)
        assert (sizes > 0).all()

    def test_uniform_0_1_mean(self):
        sizes = WorkloadGenerator(seed=2).backup_sizes(FileSizeDistribution.UNIFORM_0_1, 20000)
        assert 0.45 < sizes.mean() < 0.55

    def test_uniform_1_2_range(self):
        sizes = WorkloadGenerator(seed=2).backup_sizes(FileSizeDistribution.UNIFORM_1_2, 5000)
        assert sizes.min() >= 1.0 and sizes.max() <= 2.0

    def test_exponential_mean(self):
        sizes = WorkloadGenerator(seed=3).backup_sizes(FileSizeDistribution.EXPONENTIAL, 20000)
        assert 0.9 < sizes.mean() < 1.1

    def test_deterministic_with_seed(self):
        a = WorkloadGenerator(seed=7).backup_sizes(FileSizeDistribution.EXPONENTIAL, 100)
        b = WorkloadGenerator(seed=7).backup_sizes(FileSizeDistribution.EXPONENTIAL, 100)
        assert np.array_equal(a, b)

    def test_zero_count(self):
        assert WorkloadGenerator().backup_sizes(FileSizeDistribution.EXPONENTIAL, 0).size == 0

    def test_paper_order_and_labels(self):
        order = FileSizeDistribution.paper_order()
        assert len(order) == 5
        assert order[0].paper_label == "[1]"
        assert order[4].paper_label == "[5]"


class TestWorkloadRequests:
    def test_file_requests_scaled_to_mean(self):
        generator = WorkloadGenerator(seed=4)
        requests = generator.file_requests(2000, mean_size=10_000)
        mean = sum(r.size for r in requests) / len(requests)
        assert 8000 < mean < 12000
        assert all(r.size >= 1 and r.value >= 1 for r in requests)

    def test_file_requests_value_choices(self):
        generator = WorkloadGenerator(seed=4)
        requests = generator.file_requests(500, mean_size=100, value_choices=(2, 4))
        assert set(r.value for r in requests) <= {2, 4}

    def test_file_requests_max_size(self):
        generator = WorkloadGenerator(seed=4)
        requests = generator.file_requests(500, mean_size=100, max_size=150)
        assert max(r.size for r in requests) <= 150

    def test_sector_capacities_multiples(self):
        generator = WorkloadGenerator(seed=5)
        capacities = generator.sector_capacities(100, min_capacity=64, max_multiple=4)
        assert all(c % 64 == 0 and 64 <= c <= 256 for c in capacities)

    def test_poisson_arrivals_sorted_and_bounded(self):
        generator = WorkloadGenerator(seed=6)
        times = generator.poisson_arrival_times(rate_per_s=1.0, horizon_s=100.0)
        assert times == sorted(times)
        assert all(0 < t <= 100.0 for t in times)
        assert 50 < len(times) < 160


class TestPlacementExperiment:
    def test_reallocate_usage_in_paper_range(self):
        experiment = PlacementExperiment(seed=0)
        result = experiment.run_reallocate(
            FileSizeDistribution.UNIFORM_0_1, n_backups=10**5, n_sectors=20, rounds=20
        )
        # Paper Table III reports ~0.52-0.54 for this cell; allow slack for
        # the reduced round count.
        assert 0.50 < result.max_usage < 0.60
        assert result.overflow_rounds == 0
        assert result.mean_usage == pytest.approx(0.5, abs=0.02)

    def test_refresh_mode_at_least_as_high_as_initial(self):
        experiment = PlacementExperiment(seed=0)
        result = experiment.run_refresh(
            FileSizeDistribution.EXPONENTIAL, n_backups=20_000, n_sectors=20, refresh_multiplier=5
        )
        assert result.max_usage < 1.0
        assert result.mode == "refresh"
        assert result.rounds == 5 * 20_000

    def test_usage_never_exceeds_one_with_ample_sectors(self):
        experiment = PlacementExperiment(seed=1)
        result = experiment.run_reallocate(
            FileSizeDistribution.NORMAL_MU_EQ_VAR, n_backups=50_000, n_sectors=100, rounds=10
        )
        assert result.max_usage < 1.0

    def test_sweep_covers_grid_and_distributions(self):
        experiment = PlacementExperiment(seed=2)
        results = experiment.sweep(
            grid=[(1000, 10), (2000, 10)],
            distributions=[FileSizeDistribution.UNIFORM_0_1, FileSizeDistribution.EXPONENTIAL],
            mode="reallocate",
            rounds=3,
        )
        assert len(results) == 4
        assert {r.n_backups for r in results} == {1000, 2000}

    def test_sweep_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            PlacementExperiment().sweep(grid=[(10, 2)], mode="nope")

    def test_as_row_keys(self):
        experiment = PlacementExperiment(seed=3)
        result = experiment.run_reallocate(FileSizeDistribution.UNIFORM_1_2, 1000, 10, rounds=2)
        row = result.as_row()
        assert row["distribution"] == "[2]"
        assert {"Ncp", "Ns", "max_usage"} <= set(row)


class TestAdversaries:
    def make_placements(self, n_files=200, n_sectors=50, k=4, seed=0):
        rng = np.random.default_rng(seed)
        placements = [list(rng.integers(0, n_sectors, k)) for _ in range(n_files)]
        values = [1.0] * n_files
        capacities = [1.0] * n_sectors
        return placements, values, capacities

    def test_evaluate_loss_counts_fully_corrupted_files_only(self):
        placements = [[0, 1], [1, 2], [2, 3]]
        values = [1.0, 2.0, 4.0]
        capacities = [1.0] * 4
        outcome = evaluate_loss(placements, values, {1, 2}, capacities)
        assert outcome.lost_files == (1,)
        assert outcome.lost_value == 2.0
        assert outcome.value_loss_ratio == pytest.approx(2.0 / 7.0)
        assert outcome.capacity_fraction == pytest.approx(0.5)

    def test_random_adversary_respects_budget(self):
        placements, values, capacities = self.make_placements()
        adversary = RandomCapacityAdversary(seed=1)
        outcome = adversary.attack(capacities, placements, values, 0.3)
        assert outcome.capacity_fraction <= 0.3 + 1e-9

    def test_greedy_adversary_respects_budget(self):
        placements, values, capacities = self.make_placements()
        adversary = GreedyCapacityAdversary(seed=1)
        outcome = adversary.attack(capacities, placements, values, 0.3)
        assert outcome.capacity_fraction <= 0.3 + 1e-9

    def test_greedy_at_least_as_damaging_as_random(self):
        placements, values, capacities = self.make_placements(n_files=300, n_sectors=40, k=3)
        random_loss = RandomCapacityAdversary(seed=2).attack(
            capacities, placements, values, 0.4
        ).value_loss_ratio
        greedy_loss = GreedyCapacityAdversary(seed=2).attack(
            capacities, placements, values, 0.4
        ).value_loss_ratio
        assert greedy_loss >= random_loss

    def test_zero_budget_corrupts_nothing(self):
        placements, values, capacities = self.make_placements()
        outcome = RandomCapacityAdversary(seed=3).attack(capacities, placements, values, 0.0)
        assert outcome.lost_value == 0.0
        assert outcome.corrupted_capacity == 0.0

    def test_full_budget_destroys_everything(self):
        placements, values, capacities = self.make_placements()
        outcome = RandomCapacityAdversary(seed=4).attack(capacities, placements, values, 1.0)
        assert outcome.value_loss_ratio == pytest.approx(1.0)

    def test_invalid_budget_rejected(self):
        placements, values, capacities = self.make_placements()
        with pytest.raises(ValueError):
            RandomCapacityAdversary().choose_sectors(capacities, placements, values, 1.5)
        with pytest.raises(ValueError):
            GreedyCapacityAdversary().choose_sectors(capacities, placements, values, -0.1)

    def test_random_loss_close_to_lambda_k_expectation(self):
        # With k=3 replicas and lambda=0.5 the expected loss is 12.5%.
        placements, values, capacities = self.make_placements(
            n_files=4000, n_sectors=200, k=3, seed=5
        )
        outcome = RandomCapacityAdversary(seed=6).attack(capacities, placements, values, 0.5)
        assert 0.05 < outcome.value_loss_ratio < 0.22
