"""Run-manifest tests: JSON round-trip, sanitisation, comparison."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runner.results import RunManifest, jsonify, repo_version


def _manifest(**kwargs) -> RunManifest:
    defaults = dict(
        scenario="demo",
        params={"n": 3, "grid": (1, 2)},
        seed=7,
        workers=2,
        trial_count=2,
        duration_seconds=0.5,
        rows=[{"trial": 0, "seed": 11, "x": 1.5}, {"trial": 1, "seed": 12, "x": 2.5}],
        summary=[{"x_mean": 2.0}],
    )
    defaults.update(kwargs)
    return RunManifest(**defaults)


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        data = {
            "i": np.int64(3),
            "f": np.float64(0.5),
            "b": np.bool_(True),
            "a": np.array([1, 2, 3]),
        }
        clean = jsonify(data)
        assert clean == {"i": 3, "f": 0.5, "b": True, "a": [1, 2, 3]}
        json.dumps(clean)  # must be serialisable

    def test_tuples_and_sets_become_lists(self):
        assert jsonify((1, 2)) == [1, 2]
        assert jsonify({"key": frozenset([3])}) == {"key": [3]}

    def test_unknown_objects_stringified(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert jsonify(Weird()) == "<weird>"


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        manifest = _manifest()
        path = manifest.save(tmp_path / "runs" / "demo.json")
        assert path.exists()
        loaded = RunManifest.load(path)
        assert loaded.scenario == manifest.scenario
        assert loaded.seed == manifest.seed
        assert loaded.workers == manifest.workers
        assert loaded.rows == jsonify(manifest.rows)
        assert loaded.summary == jsonify(manifest.summary)
        assert loaded.version == manifest.version
        assert loaded.trial_rows_equal(manifest)

    def test_json_is_stable_and_diffable(self):
        manifest = _manifest()
        assert manifest.to_json() == manifest.to_json()
        parsed = json.loads(manifest.to_json())
        assert parsed["scenario"] == "demo"
        assert parsed["params"]["grid"] == [1, 2]

    def test_from_dict_requires_core_fields(self):
        with pytest.raises(ValueError, match="missing required fields"):
            RunManifest.from_dict({"scenario": "x"})

    def test_from_dict_defaults_trial_count(self):
        manifest = RunManifest.from_dict(
            {"scenario": "x", "params": {}, "seed": 0, "workers": 1, "rows": [{}, {}]}
        )
        assert manifest.trial_count == 2

    def test_from_dict_ignores_unknown_keys(self):
        manifest = RunManifest.from_dict(
            {"scenario": "x", "params": {}, "seed": 0, "workers": 1, "extra": "ignored"}
        )
        assert manifest.scenario == "x"


class TestComparison:
    def test_worker_count_and_timing_ignored(self):
        serial = _manifest(workers=1, duration_seconds=9.0, created_unix=1.0)
        parallel = _manifest(workers=8, duration_seconds=1.0, created_unix=2.0)
        assert serial.trial_rows_equal(parallel)

    def test_differing_rows_detected(self):
        changed = _manifest(rows=[{"trial": 0, "seed": 11, "x": 99.0}])
        assert not _manifest().trial_rows_equal(changed)

    def test_differing_seed_detected(self):
        assert not _manifest().trial_rows_equal(_manifest(seed=8))


def test_repo_version_is_nonempty_string():
    version = repo_version()
    assert isinstance(version, str) and version
