"""Tests for the Dynamic Replication (DRep) sector content model."""

import pytest

from repro.core.drep import DRepCostModel, SectorContentPlan, SlotKind

KIB = 1024


class TestInitialState:
    def test_sector_starts_full_of_capacity_replicas(self):
        plan = SectorContentPlan(capacity=96 * KIB, capacity_replica_size=16 * KIB)
        assert plan.capacity_replica_count == 6
        assert plan.unsealed_space() == 0
        assert plan.invariant_holds()

    def test_non_divisible_capacity_leaves_small_unsealed_tail(self):
        plan = SectorContentPlan(capacity=100 * KIB, capacity_replica_size=16 * KIB)
        assert plan.unsealed_space() < 16 * KIB
        assert plan.invariant_holds()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SectorContentPlan(capacity=0, capacity_replica_size=16)
        with pytest.raises(ValueError):
            SectorContentPlan(capacity=10, capacity_replica_size=0)
        with pytest.raises(ValueError):
            SectorContentPlan(capacity=10, capacity_replica_size=20)


class TestFigureTwoWalkthrough:
    """Reproduces the three panels of Figure 2."""

    def test_fill_then_shrink_regenerates_cr(self):
        plan = SectorContentPlan(capacity=96 * KIB, capacity_replica_size=16 * KIB)
        # (a) initially six CRs
        assert plan.capacity_replica_count == 6
        # (b) after filling some files, two CRs remain
        plan.add_file("f1", 30 * KIB)
        plan.add_file("f2", 34 * KIB)
        assert plan.capacity_replica_count == 2
        assert plan.invariant_holds()
        # (c) when total file size decreases, a CR is regenerated
        before = plan.capacity_replica_count
        plan.remove_file("f1")
        assert plan.capacity_replica_count > before
        assert plan.invariant_holds()


class TestMutations:
    def test_add_file_too_large_rejected(self):
        plan = SectorContentPlan(capacity=64 * KIB, capacity_replica_size=16 * KIB)
        with pytest.raises(ValueError):
            plan.add_file("big", 65 * KIB)

    def test_duplicate_label_rejected(self):
        plan = SectorContentPlan(capacity=64 * KIB, capacity_replica_size=16 * KIB)
        plan.add_file("f", 1 * KIB)
        with pytest.raises(ValueError):
            plan.add_file("f", 1 * KIB)

    def test_remove_unknown_raises(self):
        plan = SectorContentPlan(capacity=64 * KIB, capacity_replica_size=16 * KIB)
        with pytest.raises(KeyError):
            plan.remove_file("nope")

    def test_invariant_maintained_under_churn(self):
        plan = SectorContentPlan(capacity=128 * KIB, capacity_replica_size=16 * KIB)
        for i in range(6):
            plan.add_file(f"f{i}", (5 + i) * KIB)
            assert plan.invariant_holds()
        for i in range(0, 6, 2):
            plan.remove_file(f"f{i}")
            assert plan.invariant_holds()

    def test_layout_partitions_capacity(self):
        plan = SectorContentPlan(capacity=96 * KIB, capacity_replica_size=16 * KIB)
        plan.add_file("f1", 20 * KIB)
        layout = plan.layout()
        assert sum(slot.size for slot in layout) == 96 * KIB
        kinds = {slot.kind for slot in layout}
        assert SlotKind.FILE_REPLICA in kinds
        assert SlotKind.CAPACITY_REPLICA in kinds


class TestCostModel:
    def test_transferred_replica_skips_snark(self):
        plan = SectorContentPlan(capacity=64 * KIB, capacity_replica_size=16 * KIB)
        snarks_before = plan.costs.snark_proofs
        plan.add_file("moved", 8 * KIB, sealed_elsewhere=True)
        assert plan.costs.snark_proofs == snarks_before

    def test_new_upload_needs_snark(self):
        plan = SectorContentPlan(capacity=64 * KIB, capacity_replica_size=16 * KIB)
        snarks_before = plan.costs.snark_proofs
        plan.add_file("new", 8 * KIB, sealed_elsewhere=False)
        assert plan.costs.snark_proofs == snarks_before + 1

    def test_cr_regeneration_costs_setup_but_no_snark(self):
        plan = SectorContentPlan(capacity=64 * KIB, capacity_replica_size=16 * KIB)
        plan.add_file("f", 20 * KIB)
        snarks_before = plan.costs.snark_proofs
        setups_before = plan.costs.porep_setups
        plan.remove_file("f")  # triggers CR regeneration
        assert plan.costs.snark_proofs == snarks_before
        assert plan.costs.porep_setups > setups_before

    def test_drep_cheaper_than_whole_sector_reseal(self):
        plan = SectorContentPlan(capacity=256 * KIB, capacity_replica_size=16 * KIB)
        for i in range(10):
            plan.add_file(f"f{i}", 10 * KIB, sealed_elsewhere=(i % 2 == 0))
        assert plan.costs.total_expensive_operations() < plan.naive_reseal_cost()

    def test_cost_model_dataclass(self):
        costs = DRepCostModel(porep_setups=3, snark_proofs=2)
        assert costs.total_expensive_operations() == 5
