"""Tiny registered scenarios shared by the campaign-layer tests.

Lives in its own module (not conftest.py) because the trial functions
must be picklable into pool workers, and pytest gives every conftest.py
the same bare module name ``conftest`` -- pickle would resolve the
attribute against whichever conftest was imported first.
"""

from __future__ import annotations

from repro.runner.registry import ParamSpec, ScenarioSpec


def camp_alpha_trial(task):
    """Deterministic in (seed, x, scale) only -- instant to execute."""
    return {"x": task["x"], "value": float((task["seed"] % 97) + task["x"] * task["scale"])}


def camp_alpha_build(params):
    return [{"x": x, "scale": params["scale"]} for x in range(params["trials"])]


def camp_alpha_aggregate(rows, params):
    from repro.runner.aggregate import summarize

    return summarize(rows, group_by=(), values=("value",))


def camp_beta_trial(task):
    return {"loss": float(task["seed"] % 13) / (1.0 + task["level"])}


def camp_beta_build(params):
    return [{"level": params["level"]} for _ in range(params["trials"])]


def campaign_test_specs():
    """The 'camp-alpha' (with aggregator) and 'camp-beta' (without) specs."""
    return [
        ScenarioSpec(
            name="camp-alpha",
            description="campaign test scenario with an aggregator",
            trial_fn=camp_alpha_trial,
            build_trials=camp_alpha_build,
            params={
                "trials": ParamSpec(3, "trial count"),
                "scale": ParamSpec(1, "value multiplier"),
            },
            aggregate=camp_alpha_aggregate,
        ),
        ScenarioSpec(
            name="camp-beta",
            description="campaign test scenario without an aggregator",
            trial_fn=camp_beta_trial,
            build_trials=camp_beta_build,
            params={
                "trials": ParamSpec(2, "trial count"),
                "level": ParamSpec(0, "difficulty level"),
            },
        ),
    ]
