"""Tests for manifest comparison (``repro diff``)."""

from __future__ import annotations

import json

import pytest

from repro.runner.diff import diff_manifests, format_diff
from repro.runner.results import RunManifest


def _manifest(scenario="demo", seed=1, params=None, rows=None, summary=None, **kwargs):
    return RunManifest(
        scenario=scenario,
        params=params if params is not None else {"n": 2},
        seed=seed,
        workers=1,
        trial_count=len(rows or []),
        duration_seconds=0.1,
        rows=rows or [],
        summary=summary or [],
        version="test",
        created_unix=0.0,
        **kwargs,
    )


def _summary_row(group, mean, ci):
    return {"group": group, "loss_mean": mean, "loss_ci95": ci, "loss_n": 5}


class TestDiffManifests:
    def test_provenance_flags_differences(self):
        diff = diff_manifests(_manifest(seed=1), _manifest(seed=2))
        by_field = {row["field"]: row for row in diff["provenance"]}
        assert by_field["seed"]["same"] is False
        assert by_field["scenario"]["same"] is True
        assert diff["comparable"] is True

    def test_different_scenarios_not_comparable(self):
        diff = diff_manifests(_manifest(scenario="a"), _manifest(scenario="b"))
        assert diff["comparable"] is False

    def test_param_differences_listed(self):
        diff = diff_manifests(
            _manifest(params={"n": 2, "only_a": 1}),
            _manifest(params={"n": 3, "only_b": 4}),
        )
        by_param = {row["param"]: row for row in diff["params"]}
        assert by_param["n"] == {"param": "n", "a": 2, "b": 3}
        assert by_param["only_a"]["b"] == "<absent>"
        assert by_param["only_b"]["a"] == "<absent>"

    def test_identical_params_produce_empty_list(self):
        assert diff_manifests(_manifest(), _manifest())["params"] == []

    def test_metric_deltas_with_ci_overlap(self):
        a = _manifest(summary=[_summary_row("x", 0.50, 0.05)])
        b = _manifest(summary=[_summary_row("x", 0.52, 0.05)])
        (row,) = diff_manifests(a, b)["metrics"]
        assert row["metric"] == "loss"
        assert row["delta"] == pytest.approx(0.02)
        assert row["delta_pct"] == pytest.approx(4.0)
        assert row["ci_overlap"] is True

    def test_ci_overlap_false_when_intervals_disjoint(self):
        a = _manifest(summary=[_summary_row("x", 0.50, 0.01)])
        b = _manifest(summary=[_summary_row("x", 0.60, 0.01)])
        (row,) = diff_manifests(a, b)["metrics"]
        assert row["ci_overlap"] is False

    def test_metrics_matched_by_group_key(self):
        a = _manifest(summary=[_summary_row("x", 0.1, 0.0), _summary_row("y", 0.2, 0.0)])
        b = _manifest(summary=[_summary_row("y", 0.25, 0.0)])
        rows = diff_manifests(a, b)["metrics"]
        assert [row["group"] for row in rows] == ["y"]
        assert rows[0]["delta"] == pytest.approx(0.05)

    def test_trailing_derived_columns_are_not_group_keys(self):
        """A per-group flag an aggregator appends after the statistics must
        not join the match key, or flipped groups vanish from the table."""
        row_a = {"group": "x", "loss_mean": 0.1, "loss_ci95": 0.01, "covered": True}
        row_b = {"group": "x", "loss_mean": 0.9, "loss_ci95": 0.01, "covered": False}
        (delta,) = diff_manifests(
            _manifest(summary=[row_a]), _manifest(summary=[row_b])
        )["metrics"]
        assert delta["delta"] == pytest.approx(0.8)

    def test_metrics_filter(self):
        summary = [
            {"group": "x", "loss_mean": 0.1, "gain_mean": 0.2},
        ]
        diff = diff_manifests(
            _manifest(summary=summary), _manifest(summary=summary), metrics=["gain"]
        )
        assert [row["metric"] for row in diff["metrics"]] == ["gain"]

    def test_without_summaries_per_trial_rows_are_aggregated(self):
        rows_a = [{"trial": 0, "seed": 1, "loss": 0.1}, {"trial": 1, "seed": 2, "loss": 0.3}]
        rows_b = [{"trial": 0, "seed": 1, "loss": 0.5}, {"trial": 1, "seed": 2, "loss": 0.7}]
        (row,) = diff_manifests(_manifest(rows=rows_a), _manifest(rows=rows_b))["metrics"]
        assert row["metric"] == "loss"
        assert row["a_mean"] == pytest.approx(0.2)
        assert row["b_mean"] == pytest.approx(0.6)

    def test_bookkeeping_and_non_numeric_columns_ignored(self):
        rows = [{"trial": 0, "seed": 9, "label": "abc", "ok": True, "loss": 0.5}]
        diff = diff_manifests(_manifest(rows=rows), _manifest(rows=rows))
        assert [row["metric"] for row in diff["metrics"]] == ["loss"]

    def test_rows_identical_flag(self):
        rows = [{"trial": 0, "seed": 1, "loss": 0.25}]
        assert diff_manifests(_manifest(rows=rows), _manifest(rows=rows))[
            "rows_identical"
        ]
        assert not diff_manifests(
            _manifest(rows=rows), _manifest(rows=[{"trial": 0, "seed": 1, "loss": 0.3}])
        )["rows_identical"]


class TestFormatDiff:
    def test_sections_present(self):
        a = _manifest(summary=[_summary_row("x", 0.5, 0.1)])
        b = _manifest(summary=[_summary_row("x", 0.6, 0.1)])
        text = format_diff(diff_manifests(a, b))
        assert "provenance" in text
        assert "metric deltas" in text
        assert "per-trial rows identical" in text

    def test_warns_on_incomparable(self):
        text = format_diff(diff_manifests(_manifest(scenario="a"), _manifest(scenario="b")))
        assert "different scenarios" in text


class TestDiffCli:
    def _write(self, path, manifest):
        path.write_text(manifest.to_json())
        return str(path)

    def test_diff_command_prints_report(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest(summary=[_summary_row("x", 0.5, 0.1)]))
        b = self._write(tmp_path / "b.json", _manifest(summary=[_summary_row("x", 0.9, 0.1)]))
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "provenance" in out
        assert "metric deltas" in out
        assert "loss" in out

    def test_diff_incomparable_exits_nonzero(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest(scenario="a"))
        b = self._write(tmp_path / "b.json", _manifest(scenario="b"))
        assert main(["diff", a, b]) == 1
        assert "different scenarios" in capsys.readouterr().out

    def test_diff_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest())
        assert main(["diff", a, str(tmp_path / "nope.json")]) == 2
        assert "cannot load manifest" in capsys.readouterr().err

    def test_diff_corrupt_json_is_an_error(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest())
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["diff", a, str(bad)]) == 2
        assert "cannot load manifest" in capsys.readouterr().err
