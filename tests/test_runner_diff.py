"""Tests for manifest comparison (``repro diff``)."""

from __future__ import annotations

import json

import pytest

from repro.runner.diff import diff_manifests, format_diff
from repro.runner.results import RunManifest


def _manifest(scenario="demo", seed=1, params=None, rows=None, summary=None, **kwargs):
    return RunManifest(
        scenario=scenario,
        params=params if params is not None else {"n": 2},
        seed=seed,
        workers=1,
        trial_count=len(rows or []),
        duration_seconds=0.1,
        rows=rows or [],
        summary=summary or [],
        version="test",
        created_unix=0.0,
        **kwargs,
    )


def _summary_row(group, mean, ci):
    return {"group": group, "loss_mean": mean, "loss_ci95": ci, "loss_n": 5}


class TestDiffManifests:
    def test_provenance_flags_differences(self):
        diff = diff_manifests(_manifest(seed=1), _manifest(seed=2))
        by_field = {row["field"]: row for row in diff["provenance"]}
        assert by_field["seed"]["same"] is False
        assert by_field["scenario"]["same"] is True
        assert diff["comparable"] is True

    def test_different_scenarios_not_comparable(self):
        diff = diff_manifests(_manifest(scenario="a"), _manifest(scenario="b"))
        assert diff["comparable"] is False

    def test_param_differences_listed(self):
        diff = diff_manifests(
            _manifest(params={"n": 2, "only_a": 1}),
            _manifest(params={"n": 3, "only_b": 4}),
        )
        by_param = {row["param"]: row for row in diff["params"]}
        assert by_param["n"] == {"param": "n", "a": 2, "b": 3}
        assert by_param["only_a"]["b"] == "<absent>"
        assert by_param["only_b"]["a"] == "<absent>"

    def test_identical_params_produce_empty_list(self):
        assert diff_manifests(_manifest(), _manifest())["params"] == []

    def test_metric_deltas_with_ci_overlap(self):
        a = _manifest(summary=[_summary_row("x", 0.50, 0.05)])
        b = _manifest(summary=[_summary_row("x", 0.52, 0.05)])
        (row,) = diff_manifests(a, b)["metrics"]
        assert row["metric"] == "loss"
        assert row["delta"] == pytest.approx(0.02)
        assert row["delta_pct"] == pytest.approx(4.0)
        assert row["ci_overlap"] is True

    def test_ci_overlap_false_when_intervals_disjoint(self):
        a = _manifest(summary=[_summary_row("x", 0.50, 0.01)])
        b = _manifest(summary=[_summary_row("x", 0.60, 0.01)])
        (row,) = diff_manifests(a, b)["metrics"]
        assert row["ci_overlap"] is False

    def test_metrics_matched_by_group_key(self):
        a = _manifest(summary=[_summary_row("x", 0.1, 0.0), _summary_row("y", 0.2, 0.0)])
        b = _manifest(summary=[_summary_row("y", 0.25, 0.0)])
        rows = diff_manifests(a, b)["metrics"]
        assert [row["group"] for row in rows] == ["y"]
        assert rows[0]["delta"] == pytest.approx(0.05)

    def test_trailing_derived_columns_are_not_group_keys(self):
        """A per-group flag an aggregator appends after the statistics must
        not join the match key, or flipped groups vanish from the table."""
        row_a = {"group": "x", "loss_mean": 0.1, "loss_ci95": 0.01, "covered": True}
        row_b = {"group": "x", "loss_mean": 0.9, "loss_ci95": 0.01, "covered": False}
        (delta,) = diff_manifests(
            _manifest(summary=[row_a]), _manifest(summary=[row_b])
        )["metrics"]
        assert delta["delta"] == pytest.approx(0.8)

    def test_metrics_filter(self):
        summary = [
            {"group": "x", "loss_mean": 0.1, "gain_mean": 0.2},
        ]
        diff = diff_manifests(
            _manifest(summary=summary), _manifest(summary=summary), metrics=["gain"]
        )
        assert [row["metric"] for row in diff["metrics"]] == ["gain"]

    def test_without_summaries_per_trial_rows_are_aggregated(self):
        rows_a = [{"trial": 0, "seed": 1, "loss": 0.1}, {"trial": 1, "seed": 2, "loss": 0.3}]
        rows_b = [{"trial": 0, "seed": 1, "loss": 0.5}, {"trial": 1, "seed": 2, "loss": 0.7}]
        (row,) = diff_manifests(_manifest(rows=rows_a), _manifest(rows=rows_b))["metrics"]
        assert row["metric"] == "loss"
        assert row["a_mean"] == pytest.approx(0.2)
        assert row["b_mean"] == pytest.approx(0.6)

    def test_bookkeeping_and_non_numeric_columns_ignored(self):
        rows = [{"trial": 0, "seed": 9, "label": "abc", "ok": True, "loss": 0.5}]
        diff = diff_manifests(_manifest(rows=rows), _manifest(rows=rows))
        assert [row["metric"] for row in diff["metrics"]] == ["loss"]

    def test_matching_metric_sets_report_no_mismatch(self):
        a = _manifest(summary=[_summary_row("x", 0.5, 0.1)])
        b = _manifest(summary=[_summary_row("x", 0.6, 0.1)])
        diff = diff_manifests(a, b)
        assert diff["metrics_only_a"] == []
        assert diff["metrics_only_b"] == []

    def test_one_sided_metrics_reported(self):
        a = _manifest(summary=[{"group": "x", "loss_mean": 0.1, "gain_mean": 0.2}])
        b = _manifest(summary=[{"group": "x", "loss_mean": 0.3, "cost_mean": 0.4}])
        diff = diff_manifests(a, b)
        assert diff["metrics_only_a"] == ["gain"]
        assert diff["metrics_only_b"] == ["cost"]
        # The shared metric still gets its delta row.
        assert [row["metric"] for row in diff["metrics"]] == ["loss"]

    def test_metrics_filter_scopes_the_mismatch_check(self):
        """Metrics the user excluded via --metrics must not count as a
        mismatch -- the filter exists to compare just the shared set."""
        a = _manifest(summary=[{"group": "x", "loss_mean": 0.1, "gain_mean": 0.2}])
        b = _manifest(summary=[{"group": "x", "loss_mean": 0.3}])
        diff = diff_manifests(a, b, metrics=["loss"])
        assert diff["metrics_only_a"] == []
        assert diff["metrics_only_b"] == []
        diff = diff_manifests(a, b, metrics=["loss", "gain"])
        assert diff["metrics_only_a"] == ["gain"]

    def test_requested_metric_absent_from_both_is_flagged(self):
        """A typo'd --metrics name must not produce a vacuous pass."""
        a = _manifest(summary=[_summary_row("x", 0.5, 0.1)])
        diff = diff_manifests(a, a, metrics=["no_such_metric"])
        assert diff["metrics_missing"] == ["no_such_metric"]
        assert diff_manifests(a, a, metrics=["loss"])["metrics_missing"] == []

    def test_rows_identical_flag(self):
        rows = [{"trial": 0, "seed": 1, "loss": 0.25}]
        assert diff_manifests(_manifest(rows=rows), _manifest(rows=rows))[
            "rows_identical"
        ]
        assert not diff_manifests(
            _manifest(rows=rows), _manifest(rows=[{"trial": 0, "seed": 1, "loss": 0.3}])
        )["rows_identical"]


class TestFormatDiff:
    def test_sections_present(self):
        a = _manifest(summary=[_summary_row("x", 0.5, 0.1)])
        b = _manifest(summary=[_summary_row("x", 0.6, 0.1)])
        text = format_diff(diff_manifests(a, b))
        assert "provenance" in text
        assert "metric deltas" in text
        assert "per-trial rows identical" in text

    def test_warns_on_incomparable(self):
        text = format_diff(diff_manifests(_manifest(scenario="a"), _manifest(scenario="b")))
        assert "different scenarios" in text

    def test_metric_mismatch_message_names_the_metrics(self):
        a = _manifest(summary=[{"group": "x", "loss_mean": 0.1, "gain_mean": 0.2}])
        b = _manifest(summary=[{"group": "x", "loss_mean": 0.3}])
        text = format_diff(diff_manifests(a, b))
        assert "metric sets differ" in text
        assert "only in a: gain" in text

    def test_no_mismatch_message_when_sets_match(self):
        a = _manifest(summary=[_summary_row("x", 0.5, 0.1)])
        text = format_diff(diff_manifests(a, a))
        assert "metric sets differ" not in text


class TestDiffCli:
    def _write(self, path, manifest):
        path.write_text(manifest.to_json())
        return str(path)

    def test_diff_command_prints_report(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest(summary=[_summary_row("x", 0.5, 0.1)]))
        b = self._write(tmp_path / "b.json", _manifest(summary=[_summary_row("x", 0.9, 0.1)]))
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "provenance" in out
        assert "metric deltas" in out
        assert "loss" in out

    def test_diff_incomparable_exits_nonzero(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest(scenario="a"))
        b = self._write(tmp_path / "b.json", _manifest(scenario="b"))
        assert main(["diff", a, b]) == 1
        assert "different scenarios" in capsys.readouterr().out

    def test_diff_metric_mismatch_exits_nonzero(self, tmp_path, capsys):
        """A metric column present in only one manifest must fail loudly,
        not silently vanish from the delta table."""
        from repro.runner.cli import main

        a = self._write(
            tmp_path / "a.json",
            _manifest(summary=[{"group": "x", "loss_mean": 0.1, "gain_mean": 0.2}]),
        )
        b = self._write(
            tmp_path / "b.json", _manifest(summary=[{"group": "x", "loss_mean": 0.3}])
        )
        assert main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "metric sets differ" in out
        assert "only in a: gain" in out

    def test_diff_matching_metrics_still_exits_zero(self, tmp_path):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest(summary=[_summary_row("x", 0.5, 0.1)]))
        b = self._write(tmp_path / "b.json", _manifest(summary=[_summary_row("x", 0.9, 0.1)]))
        assert main(["diff", a, b]) == 0

    def test_diff_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest())
        assert main(["diff", a, str(tmp_path / "nope.json")]) == 2
        assert "cannot load manifest" in capsys.readouterr().err

    def test_diff_corrupt_json_is_an_error(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest())
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["diff", a, str(bad)]) == 2
        assert "cannot load manifest" in capsys.readouterr().err

    def test_diff_wrong_shape_json_is_an_error_not_a_traceback(self, tmp_path, capsys):
        """Valid JSON of the wrong shape must surface as the same clean
        'cannot load manifest' error as syntactically bad JSON."""
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest())
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"scenario": "demo", "params": {}, "seed": 1, "workers": 1, "rows": 5}'
        )
        assert main(["diff", a, str(bad)]) == 2
        assert "cannot load manifest" in capsys.readouterr().err

    def test_diff_typod_metrics_filter_exits_nonzero(self, tmp_path, capsys):
        from repro.runner.cli import main

        a = self._write(tmp_path / "a.json", _manifest(summary=[_summary_row("x", 0.5, 0.1)]))
        assert main(["diff", a, a, "--metrics", "no_such_metric"]) == 1
        assert "exist in neither manifest" in capsys.readouterr().out


class TestStragglerFactor:
    def _stats_manifest(self, walls):
        return _manifest(
            rows=[{"trial": i, "seed": i} for i in range(len(walls))],
            trial_stats=[
                {"trial": i, "wall_seconds": wall, "pid": 1}
                for i, wall in enumerate(walls)
            ],
        )

    def test_factor_threads_into_straggler_rows(self):
        # 0.25 is 2.5x the median: invisible at the default 3x, flagged at 2x.
        manifest = self._stats_manifest([0.1, 0.1, 0.1, 0.25])
        lax = diff_manifests(manifest, manifest)
        assert lax["straggler_factor"] == 3.0
        assert lax["stragglers_a"] == []
        strict = diff_manifests(manifest, manifest, straggler_factor=2.0)
        assert strict["straggler_factor"] == 2.0
        assert [row["trial"] for row in strict["stragglers_a"]] == [3]
        assert strict["stragglers_b"] == strict["stragglers_a"]

    def test_non_positive_factor_rejected(self):
        manifest = self._stats_manifest([0.1])
        with pytest.raises(ValueError):
            diff_manifests(manifest, manifest, straggler_factor=0.0)
        with pytest.raises(ValueError):
            diff_manifests(manifest, manifest, straggler_factor=-1.0)

    def test_format_diff_names_the_factor(self):
        manifest = self._stats_manifest([0.1, 0.1, 0.1, 0.25])
        text = format_diff(diff_manifests(manifest, manifest, straggler_factor=2.0))
        assert "> 2x the" in text

    def test_cli_flag_reaches_the_report(self, tmp_path, capsys):
        from repro.runner.cli import main

        path = tmp_path / "m.json"
        path.write_text(self._stats_manifest([0.1, 0.1, 0.1, 0.25]).to_json())
        # Informational only: flagged stragglers never flip the exit code.
        assert main(["diff", str(path), str(path), "--straggler-factor", "2"]) == 0
        out = capsys.readouterr().out
        assert "straggler trials in a (> 2x the" in out
        assert main(["diff", str(path), str(path)]) == 0
        assert "straggler" not in capsys.readouterr().out

    def test_cli_rejects_bad_factor(self, tmp_path, capsys):
        from repro.runner.cli import main

        path = tmp_path / "m.json"
        path.write_text(self._stats_manifest([0.1]).to_json())
        assert main(["diff", str(path), str(path), "--straggler-factor", "0"]) == 2
        assert "positive" in capsys.readouterr().err
