"""Tests for the FileInsurer protocol state machine (Figures 4-9)."""

import pytest

from repro.core.allocation import AllocState
from repro.core.events import EventType
from repro.core.file_descriptor import FileState
from repro.core.params import ProtocolParams
from repro.core.protocol import FileInsurerProtocol, ProtocolError
from repro.core.sector import SectorState
from repro.chain.ledger import Ledger
from repro.crypto.prng import DeterministicPRNG

ROOT = b"\x07" * 32


def make_protocol(params=None, providers=3, health=None, charge_fees=True, seed=7):
    params = params or ProtocolParams.small_test()
    ledger = Ledger()
    protocol = FileInsurerProtocol(
        params=params,
        ledger=ledger,
        prng=DeterministicPRNG.from_int(seed, domain="proto-test"),
        health_oracle=health or (lambda sector_id: True),
        auto_prove=True,
        charge_fees=charge_fees,
    )
    for index in range(providers):
        owner = f"prov-{index}"
        ledger.mint(owner, 1_000_000)
        protocol.sector_register(owner, params.min_capacity)
    ledger.mint("client", 1_000_000)
    return protocol


def confirm_all(protocol, file_id):
    for index, entry in protocol.alloc.entries_for_file(file_id):
        if entry.next is not None:
            owner = protocol.sectors[entry.next].owner
            protocol.file_confirm(owner, file_id, index, entry.next)


def store_file(protocol, size=4096, value=1, owner="client"):
    file_id = protocol.file_add(owner, size, value, ROOT)
    confirm_all(protocol, file_id)
    deadline = protocol.pending.peek_time()
    protocol.advance_time(deadline)
    return file_id


class TestSectorRegister:
    def test_register_creates_record_and_locks_deposit(self):
        protocol = make_protocol(providers=0)
        protocol.ledger.mint("alice", 1_000_000)
        sector_id = protocol.sector_register("alice", protocol.params.min_capacity)
        record = protocol.sectors[sector_id]
        assert record.owner == "alice"
        assert record.state == SectorState.NORMAL
        assert record.deposit > 0
        assert protocol.ledger.escrowed("alice") == record.deposit
        assert protocol.selector.contains(sector_id)

    def test_sector_ids_unique_per_owner(self):
        protocol = make_protocol(providers=0)
        protocol.ledger.mint("alice", 10_000_000)
        a = protocol.sector_register("alice", protocol.params.min_capacity)
        b = protocol.sector_register("alice", protocol.params.min_capacity)
        assert a != b

    def test_capacity_must_be_multiple_of_min(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError):
            protocol.sector_register("prov-0", protocol.params.min_capacity + 1)

    def test_register_without_funds_fails(self):
        protocol = make_protocol(providers=0)
        protocol.ledger.mint("broke", 1)
        with pytest.raises(ProtocolError):
            protocol.sector_register("broke", protocol.params.min_capacity)

    def test_disable_requires_owner(self):
        protocol = make_protocol()
        sector_id = next(iter(protocol.sectors))
        with pytest.raises(ProtocolError):
            protocol.sector_disable("not-the-owner", sector_id)

    def test_disable_empty_sector_removes_and_refunds(self):
        protocol = make_protocol()
        sector_id = next(iter(protocol.sectors))
        owner = protocol.sectors[sector_id].owner
        deposit = protocol.sectors[sector_id].deposit
        assert protocol.ledger.escrowed(owner) == deposit
        protocol.sector_disable(owner, sector_id)
        record = protocol.sectors[sector_id]
        assert record.state == SectorState.REMOVED
        assert protocol.ledger.escrowed(owner) == 0  # deposit released
        assert protocol.events.count(EventType.DEPOSIT_REFUNDED) == 1
        assert not protocol.selector.contains(sector_id)


class TestFileAdd:
    def test_file_add_creates_descriptor_and_allocations(self):
        protocol = make_protocol()
        file_id = protocol.file_add("client", 4096, 1, ROOT)
        descriptor = protocol.files[file_id]
        assert descriptor.replica_count == protocol.params.k
        entries = protocol.alloc.entries_for_file(file_id)
        assert len(entries) == descriptor.replica_count
        assert all(entry.state == AllocState.ALLOC for _, entry in entries)
        assert all(entry.next is not None for _, entry in entries)

    def test_replica_count_scales_with_value(self):
        protocol = make_protocol()
        file_id = protocol.file_add("client", 4096, 2, ROOT)
        assert protocol.files[file_id].replica_count == 2 * protocol.params.k

    def test_allocations_reserve_sector_space(self):
        protocol = make_protocol()
        free_before = {s: r.free_capacity for s, r in protocol.sectors.items()}
        file_id = protocol.file_add("client", 4096, 1, ROOT)
        reserved = sum(
            free_before[s] - record.free_capacity for s, record in protocol.sectors.items()
        )
        assert reserved == 4096 * protocol.files[file_id].replica_count

    def test_zero_size_rejected(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError):
            protocol.file_add("client", 0, 1, ROOT)

    def test_oversized_file_rejected(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError):
            protocol.file_add("client", protocol.params.size_limit + 1, 1, ROOT)

    def test_value_cap_enforced(self):
        params = ProtocolParams.small_test().scaled(cap_para=0.5, k=1)
        protocol = make_protocol(params=params, providers=2)
        # max value = 0.5 * 2 = 1 value unit
        store_file(protocol, size=1024, value=1)
        with pytest.raises(ProtocolError):
            protocol.file_add("client", 1024, 1, ROOT)

    def test_redundant_capacity_budget_enforced(self):
        params = ProtocolParams.small_test().scaled(k=2, cap_para=1000.0)
        protocol = make_protocol(params=params, providers=2)
        huge = params.min_capacity // 2
        protocol.file_add("client", huge, 1, ROOT)
        with pytest.raises(ProtocolError):
            protocol.file_add("client", huge, 1, ROOT)


class TestCheckAlloc:
    def test_confirmed_file_becomes_normal(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        descriptor = protocol.files[file_id]
        assert descriptor.state == FileState.NORMAL
        entries = protocol.alloc.entries_for_file(file_id)
        assert all(entry.state == AllocState.NORMAL for _, entry in entries)
        assert all(entry.prev is not None and entry.next is None for _, entry in entries)
        assert protocol.events.count(EventType.FILE_STORED) == 1

    def test_unconfirmed_file_fails_and_releases_space(self):
        protocol = make_protocol()
        file_id = protocol.file_add("client", 4096, 1, ROOT)
        # nobody confirms
        protocol.advance_time(protocol.pending.peek_time())
        assert protocol.files[file_id].state == FileState.FAILED
        assert protocol.events.count(EventType.FILE_UPLOAD_FAILED) == 1
        assert len(protocol.alloc.entries_for_file(file_id)) == 0
        total_free = sum(record.free_capacity for record in protocol.sectors.values())
        total_capacity = sum(record.capacity for record in protocol.sectors.values())
        assert total_free == total_capacity

    def test_partially_confirmed_file_fails(self):
        protocol = make_protocol()
        file_id = protocol.file_add("client", 4096, 1, ROOT)
        entries = protocol.alloc.entries_for_file(file_id)
        index, entry = entries[0]
        owner = protocol.sectors[entry.next].owner
        protocol.file_confirm(owner, file_id, index, entry.next)
        protocol.advance_time(protocol.pending.peek_time())
        assert protocol.files[file_id].state == FileState.FAILED

    def test_traffic_fee_paid_only_on_confirm(self):
        protocol = make_protocol()
        file_id = protocol.file_add("client", 4096, 1, ROOT)
        escrowed = protocol.ledger.escrowed("client")
        assert escrowed > 0
        confirm_all(protocol, file_id)
        assert protocol.ledger.escrowed("client") == 0
        assert protocol.events.count(EventType.TRAFFIC_FEE_PAID) == protocol.params.k


class TestFileConfirmAndProve:
    def test_confirm_requires_matching_sector(self):
        protocol = make_protocol()
        file_id = protocol.file_add("client", 4096, 1, ROOT)
        entries = protocol.alloc.entries_for_file(file_id)
        index, entry = entries[0]
        wrong_sector = next(s for s in protocol.sectors if s != entry.next)
        owner = protocol.sectors[wrong_sector].owner
        with pytest.raises(ProtocolError):
            protocol.file_confirm(owner, file_id, index, wrong_sector)

    def test_confirm_requires_sector_owner(self):
        protocol = make_protocol()
        file_id = protocol.file_add("client", 4096, 1, ROOT)
        index, entry = protocol.alloc.entries_for_file(file_id)[0]
        with pytest.raises(ProtocolError):
            protocol.file_confirm("someone-else", file_id, index, entry.next)

    def test_prove_updates_last_proof(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        index, entry = protocol.alloc.entries_for_file(file_id)[0]
        owner = protocol.sectors[entry.prev].owner
        protocol.advance_time(protocol.now + 10)
        protocol.file_prove(owner, file_id, index, entry.prev)
        assert entry.last_proof == protocol.now

    def test_prove_from_non_host_rejected(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        index, entry = protocol.alloc.entries_for_file(file_id)[0]
        other = next(s for s in protocol.sectors if s != entry.prev)
        with pytest.raises(ProtocolError):
            protocol.file_prove(protocol.sectors[other].owner, file_id, index, other)

    def test_invalid_proof_rejected(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        index, entry = protocol.alloc.entries_for_file(file_id)[0]
        owner = protocol.sectors[entry.prev].owner
        with pytest.raises(ProtocolError):
            protocol.file_prove(owner, file_id, index, entry.prev, proof_valid=False)

    def test_future_proof_timestamp_rejected(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        index, entry = protocol.alloc.entries_for_file(file_id)[0]
        owner = protocol.sectors[entry.prev].owner
        with pytest.raises(ProtocolError):
            protocol.file_prove(owner, file_id, index, entry.prev, proof_time=protocol.now + 100)


class TestCheckProofAndRent:
    def test_rent_charged_each_cycle(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        balance_before = protocol.ledger.balance("client")
        protocol.advance_time(protocol.now + 3 * protocol.params.proof_cycle)
        assert protocol.ledger.balance("client") < balance_before
        assert protocol.events.count(EventType.RENT_CHARGED) >= 2
        assert protocol.files[file_id].rent_paid > 0

    def test_broke_client_file_discarded(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        # Drain the client's balance so the next cycle cannot be paid.
        balance = protocol.ledger.balance("client")
        protocol.ledger.transfer("client", "sink", balance)
        protocol.advance_time(protocol.now + 2 * protocol.params.proof_cycle)
        descriptor = protocol.files[file_id]
        assert descriptor.state == FileState.DISCARDED
        assert len(protocol.alloc.entries_for_file(file_id)) == 0

    def test_rent_distributed_to_providers(self):
        protocol = make_protocol()
        store_file(protocol)
        protocol.advance_time(protocol.now + protocol.params.rent_period + 1)
        assert protocol.fees.rent.total_collected > 0
        assert protocol.fees.rent.total_distributed > 0
        assert protocol.fees.rent.total_distributed <= protocol.fees.rent.total_collected
        assert protocol.events.count(EventType.RENT_DISTRIBUTED) >= 1

    def test_missed_proofs_lead_to_corruption_and_loss(self):
        # Health oracle says sectors are unhealthy -> no automatic proofs.
        protocol = make_protocol(health=lambda sector_id: False)
        file_id = store_file(protocol)
        protocol.advance_time(
            protocol.now + protocol.params.proof_deadline + 2 * protocol.params.proof_cycle
        )
        assert protocol.files[file_id].state == FileState.LOST
        assert protocol.events.count(EventType.SECTOR_CORRUPTED) >= 1
        assert protocol.events.count(EventType.DEPOSIT_CONFISCATED) >= 1

    def test_late_proofs_punished_but_not_fatal(self):
        params = ProtocolParams.small_test().scaled(
            proof_cycle=60.0, proof_due=30.0, proof_deadline=100_000.0
        )
        healthy = {"flag": False}
        protocol = make_protocol(params=params, health=lambda sector_id: healthy["flag"])
        file_id = store_file(protocol)
        protocol.advance_time(protocol.now + 3 * params.proof_cycle)
        assert protocol.events.count(EventType.PROVIDER_PUNISHED) >= 1
        assert protocol.files[file_id].state == FileState.NORMAL


class TestDiscardAndLoss:
    def test_discard_removes_file_at_next_checkpoint(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        protocol.file_discard("client", file_id)
        assert protocol.files[file_id].state == FileState.DISCARDED
        protocol.advance_time(protocol.now + protocol.params.proof_cycle + 1)
        assert len(protocol.alloc.entries_for_file(file_id)) == 0
        total_free = sum(r.free_capacity for r in protocol.sectors.values())
        total_capacity = sum(r.capacity for r in protocol.sectors.values())
        assert total_free == total_capacity

    def test_discard_requires_owner(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        with pytest.raises(ProtocolError):
            protocol.file_discard("mallory", file_id)

    def test_crash_all_hosts_compensates_owner_fully(self):
        protocol = make_protocol()
        file_id = store_file(protocol, value=1)
        balance_before = protocol.ledger.balance("client")
        hosting = {entry.prev for _, entry in protocol.alloc.entries_for_file(file_id)}
        for sector_id in hosting:
            protocol.crash_sector(sector_id)
        protocol.advance_time(protocol.now + protocol.params.proof_cycle + 1)
        descriptor = protocol.files[file_id]
        assert descriptor.state == FileState.LOST
        assert descriptor.compensation_received >= descriptor.value
        assert protocol.ledger.balance("client") > balance_before - descriptor.rent_paid
        assert protocol.events.count(EventType.FILE_COMPENSATED) == 1

    def test_partial_crash_keeps_file_alive(self):
        protocol = make_protocol(providers=4)
        file_id = store_file(protocol)
        hosting = sorted({entry.prev for _, entry in protocol.alloc.entries_for_file(file_id)})
        if len(hosting) > 1:
            protocol.crash_sector(hosting[0])
        protocol.advance_time(protocol.now + protocol.params.proof_cycle + 1)
        assert protocol.files[file_id].state == FileState.NORMAL

    def test_corrupted_sector_removed_from_selection(self):
        protocol = make_protocol()
        sector_id = next(iter(protocol.sectors))
        protocol.crash_sector(sector_id)
        assert not protocol.selector.contains(sector_id)
        assert protocol.sectors[sector_id].state == SectorState.CORRUPTED


class TestRefresh:
    def test_refresh_eventually_moves_replicas(self):
        params = ProtocolParams.small_test().scaled(avg_refresh=1.0)
        protocol = make_protocol(params=params, providers=4)
        file_id = store_file(protocol)
        for _ in range(12):
            protocol.advance_time(protocol.now + params.proof_cycle)
            # Confirm any pending refresh targets so swaps complete.
            for index, entry in protocol.alloc.entries_for_file(file_id):
                if entry.state == AllocState.ALLOC and entry.next is not None:
                    owner = protocol.sectors[entry.next].owner
                    protocol.file_confirm(owner, file_id, index, entry.next)
        assert protocol.events.count(EventType.FILE_REFRESH_STARTED) >= 1
        assert protocol.events.count(EventType.FILE_REFRESH_COMPLETED) >= 1
        assert protocol.files[file_id].state == FileState.NORMAL

    def test_failed_refresh_punishes_and_retries(self):
        params = ProtocolParams.small_test().scaled(avg_refresh=1.0)
        protocol = make_protocol(params=params, providers=4)
        file_id = store_file(protocol)
        # Never confirm refresh swaps: every CheckRefresh should punish and retry.
        for _ in range(10):
            protocol.advance_time(protocol.now + params.proof_cycle)
        assert protocol.events.count(EventType.FILE_REFRESH_FAILED) >= 1
        assert protocol.events.count(EventType.PROVIDER_PUNISHED) >= 1
        assert protocol.files[file_id].state == FileState.NORMAL

    def test_crash_of_refresh_target_does_not_lose_the_replica(self):
        """If the *target* sector of an in-flight swap collapses, the
        predecessor still holds the replica and the entry stays normal."""
        params = ProtocolParams.small_test().scaled(avg_refresh=1.0)
        protocol = make_protocol(params=params, providers=4)
        file_id = store_file(protocol)
        # Advance until some replica is mid-refresh (state ALLOC with a target).
        target_entry = None
        for _ in range(30):
            protocol.advance_time(protocol.now + params.proof_cycle)
            for _, entry in protocol.alloc.entries_for_file(file_id):
                if entry.state == AllocState.ALLOC and entry.next is not None:
                    target_entry = entry
                    break
            if target_entry is not None:
                break
        assert target_entry is not None, "no refresh started within 30 cycles"
        protocol.crash_sector(target_entry.next)
        assert target_entry.state == AllocState.NORMAL
        assert target_entry.next is None
        assert protocol.files[file_id].state == FileState.NORMAL

    def test_refresh_releases_space_on_old_sector(self):
        params = ProtocolParams.small_test().scaled(avg_refresh=1.0)
        protocol = make_protocol(params=params, providers=4)
        file_id = store_file(protocol, size=8192)
        descriptor = protocol.files[file_id]
        for _ in range(15):
            protocol.advance_time(protocol.now + params.proof_cycle)
            for index, entry in protocol.alloc.entries_for_file(file_id):
                if entry.state == AllocState.ALLOC and entry.next is not None:
                    owner = protocol.sectors[entry.next].owner
                    protocol.file_confirm(owner, file_id, index, entry.next)
        # Total reserved space must equal replicas * size plus one extra
        # reservation per swap still in flight (the target sector holds its
        # space until CheckRefresh resolves) -- i.e. no space leaks.
        in_flight = sum(
            1
            for _, entry in protocol.alloc.entries_for_file(file_id)
            if entry.next is not None
        )
        reserved = sum(record.used_capacity for record in protocol.sectors.values())
        assert reserved == descriptor.size * (descriptor.replica_count + in_flight)


class TestTimeAndQueries:
    def test_time_cannot_go_backwards(self):
        protocol = make_protocol()
        protocol.advance_time(10.0)
        with pytest.raises(ValueError):
            protocol.advance_time(5.0)

    def test_file_locations_unknown_file(self):
        protocol = make_protocol()
        with pytest.raises(ProtocolError):
            protocol.file_locations(999)

    def test_snapshot_and_aggregates(self):
        protocol = make_protocol()
        store_file(protocol)
        snapshot = protocol.snapshot()
        assert snapshot["files_stored"] == 1.0
        assert protocol.weighted_sector_count() == pytest.approx(3.0)
        assert protocol.weighted_value_count() == pytest.approx(1.0)
        assert protocol.value_loss_ratio() == 0.0

    def test_ledger_conservation_through_full_lifecycle(self):
        protocol = make_protocol()
        file_id = store_file(protocol)
        hosting = {entry.prev for _, entry in protocol.alloc.entries_for_file(file_id)}
        for sector_id in hosting:
            protocol.crash_sector(sector_id)
        protocol.advance_time(protocol.now + protocol.params.rent_period + 1)
        assert protocol.ledger.check_conservation()
