"""Tests for protocol parameters and derived quantities."""

import pytest

from repro.core.params import GIB, ProtocolParams


class TestReplicaCount:
    def test_unit_value_gets_k_replicas(self):
        params = ProtocolParams(k=20, min_value=1)
        assert params.replica_count(1) == 20

    def test_replicas_linear_in_value(self):
        params = ProtocolParams(k=20, min_value=1)
        assert params.replica_count(3) == 60

    def test_value_must_be_multiple_of_min_value(self):
        params = ProtocolParams(min_value=5)
        with pytest.raises(ValueError):
            params.replica_count(7)

    def test_value_must_be_positive(self):
        params = ProtocolParams()
        with pytest.raises(ValueError):
            params.replica_count(0)


class TestDeposit:
    def test_deposit_proportional_to_capacity(self):
        params = ProtocolParams(min_capacity=GIB, deposit_ratio=0.01, cap_para=100.0)
        one = params.sector_deposit(GIB, 0)
        four = params.sector_deposit(4 * GIB, 0)
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_deposit_formula_matches_paper(self):
        # capacity * gamma_deposit * capPara * minValue / minCapacity
        params = ProtocolParams(min_capacity=GIB, deposit_ratio=0.0046, cap_para=1000.0, min_value=10)
        expected = 2 * 0.0046 * 1000.0 * 10
        assert params.sector_deposit(2 * GIB, 0) == pytest.approx(expected, rel=0.01)

    def test_capacity_must_be_multiple_of_min_capacity(self):
        params = ProtocolParams(min_capacity=GIB)
        with pytest.raises(ValueError):
            params.sector_deposit(GIB + 1, 0)

    def test_deposit_never_zero(self):
        params = ProtocolParams(min_capacity=GIB, deposit_ratio=1e-12)
        assert params.sector_deposit(GIB, 0) >= 1


class TestFeesAndTimes:
    def test_transfer_deadline_scales_with_size(self):
        params = ProtocolParams(delay_per_size=2.0)
        assert params.transfer_deadline(10) == pytest.approx(20.0)

    def test_rent_scales_with_size_and_replicas(self):
        params = ProtocolParams(rent_per_byte_cycle=0.001)
        assert params.rent_for_cycle(1000, 10) == 10
        assert params.rent_for_cycle(0, 10) == 0
        assert params.rent_for_cycle(1, 1) >= 1  # never zero for non-empty files

    def test_traffic_fee(self):
        params = ProtocolParams(traffic_fee_per_byte=0.01)
        assert params.traffic_fee(1000) == 10
        assert params.traffic_fee(0) == 0

    def test_max_value_capacity(self):
        params = ProtocolParams(min_capacity=GIB, cap_para=1000.0, min_value=1)
        assert params.max_value_capacity(10 * GIB) == 10_000


class TestPresets:
    def test_small_test_keeps_redundancy_and_positive_times(self):
        params = ProtocolParams.small_test()
        assert params.redundancy_factor >= 2.0
        assert params.proof_due > params.proof_cycle
        assert params.proof_deadline > params.proof_due
        assert params.capacity_replica_size < params.min_capacity

    def test_paper_defaults_match_section_v(self):
        params = ProtocolParams.paper_defaults()
        assert params.k == 20
        assert params.cap_para == 1000.0
        assert params.security_c == 1e-18

    def test_scaled_overrides_only_selected_fields(self):
        params = ProtocolParams.small_test()
        scaled = params.scaled(k=7)
        assert scaled.k == 7
        assert scaled.min_capacity == params.min_capacity
