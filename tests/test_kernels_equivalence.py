"""Cross-backend equivalence gates for the simulation-kernel layer.

The :mod:`repro.kernels` contract is *bit*-equivalence: for identical
seeds and shapes, the ``reference`` oracle loops and the ``vectorized``
numpy kernels must produce identical ``PlacementResult`` fields,
identical greedy-adversary sector choices, and identical
``batch_weighted_draw`` key sequences (with matching attempt and
collision counts).  These tests sweep a seed/shape grid over both
backends and additionally pin the refresh engine's batch-size
invariance (the PR-4 metrics fix): ``batch_size`` bounds memory only,
so serial (``batch_size=1``) and batched runs must be byte-identical.
The hypothesis-generated differential pack lives in
``tests/test_property_based.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KernelBackend,
    KernelError,
    available_backends,
    get_backend,
    resolve_backend_name,
    sampler_stream,
)
from repro.kernels.sampling import MAX_TOTAL_WEIGHT
from repro.sim.adversary import GreedyCapacityAdversary
from repro.sim.placement import PlacementExperiment
from repro.sim.workload import FileSizeDistribution

BACKENDS = ("reference", "vectorized")

#: (n_backups, n_sectors) shapes covering tiny, skewed and the vectorized
#: kernel's two replay layouts (segment loop below 1024 groups, padded
#: table above).
REFRESH_SHAPES = ((300, 3), (500, 7), (2000, 40), (600, 1500))


class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ["reference", "vectorized"]

    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert DEFAULT_BACKEND == "vectorized"
        assert get_backend().name == "vectorized"
        assert resolve_backend_name("auto") == "vectorized"
        assert resolve_backend_name("") == "vectorized"
        assert resolve_backend_name(None) == "vectorized"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert get_backend().name == "reference"
        assert resolve_backend_name("auto") == "reference"
        # An explicit name always wins over the environment.
        assert get_backend("vectorized").name == "vectorized"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        with pytest.raises(KernelError, match="unknown kernel backend"):
            get_backend("numba")
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(KernelError, match="known backends"):
            get_backend()

    def test_instance_passthrough(self):
        backend = get_backend("reference")
        assert get_backend(backend) is backend
        assert isinstance(backend, KernelBackend)

    def test_experiment_records_backend_name(self):
        assert PlacementExperiment(backend="reference").backend == "reference"
        assert GreedyCapacityAdversary(backend="vectorized").backend == "vectorized"


class TestPlacementKernelEquivalence:
    def test_place_backups_bit_identical(self):
        sizes = np.random.default_rng(11).exponential(1.0, 5000)
        results = {}
        for name in BACKENDS:
            rng = np.random.default_rng(42)
            results[name] = get_backend(name).place_backups(rng, sizes, 37)
        assert np.array_equal(results["reference"][0], results["vectorized"][0])
        # Bit-identical usage, not merely close: bincount accumulates in
        # input order, exactly like the reference loop.
        assert np.array_equal(results["reference"][1], results["vectorized"][1])

    @pytest.mark.parametrize("distribution", list(FileSizeDistribution))
    def test_run_reallocate_identical_results(self, distribution):
        results = [
            PlacementExperiment(seed=5, backend=name).run_reallocate(
                distribution, 2000, 25, rounds=3
            )
            for name in BACKENDS
        ]
        assert results[0] == results[1]

    @pytest.mark.parametrize("shape", REFRESH_SHAPES)
    @pytest.mark.parametrize("seed", (0, 7))
    def test_run_refresh_identical_results(self, shape, seed):
        n_backups, n_sectors = shape
        results = [
            PlacementExperiment(seed=seed, backend=name).run_refresh(
                FileSizeDistribution.EXPONENTIAL,
                n_backups,
                n_sectors,
                refresh_multiplier=3,
            )
            for name in BACKENDS
        ]
        # Frozen-dataclass equality covers every field, including the
        # floats, which must match to the last bit.
        assert results[0] == results[1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_refresh_batch_size_invariance(self, backend):
        """Regression gate for the PR-4 metrics fix: re-batching must not
        change any reported number, including the once-per-batch-sampled
        ``mean_usage``/``overflow_rounds``."""
        reference_result = None
        for batch_size in (1, 13, 400, 10**6):
            result = PlacementExperiment(seed=3, backend=backend).run_refresh(
                FileSizeDistribution.UNIFORM_0_1,
                700,
                9,
                refresh_multiplier=3,
                batch_size=batch_size,
            )
            if reference_result is None:
                reference_result = result
            assert result == reference_result, f"batch_size={batch_size} drifted"

    def test_serial_vs_batched_refresh_identity_across_backends(self):
        """The strongest combined gate: serial reference (one move at a
        time) equals fully-batched vectorized, bit for bit."""
        serial = PlacementExperiment(seed=9, backend="reference").run_refresh(
            FileSizeDistribution.NORMAL_MU_EQ_VAR, 500, 11,
            refresh_multiplier=2, batch_size=1,
        )
        batched = PlacementExperiment(seed=9, backend="vectorized").run_refresh(
            FileSizeDistribution.NORMAL_MU_EQ_VAR, 500, 11,
            refresh_multiplier=2, batch_size=10**6,
        )
        assert serial == batched

    def test_skew_split_fallback_is_bit_identical(self, monkeypatch):
        """Force the vectorized kernel's pathological-skew half-batch
        split and assert it still matches the reference loop exactly --
        including the source resolution of backups whose moves straddle
        the split point."""
        import repro.kernels.vectorized as vectorized_module

        monkeypatch.setattr(vectorized_module, "_GROUP_LOOP_MAX", 0)
        monkeypatch.setattr(vectorized_module, "_MAX_TABLE_CELLS", 8)
        results = [
            PlacementExperiment(seed=4, backend=name).run_refresh(
                FileSizeDistribution.EXPONENTIAL, 200, 6, refresh_multiplier=4
            )
            for name in BACKENDS
        ]
        assert results[0] == results[1]

    def test_sample_interval_controls_sampling(self):
        """A finer cadence samples more often; both backends agree."""
        results = {}
        for name in BACKENDS:
            results[name] = PlacementExperiment(seed=2, backend=name).run_refresh(
                FileSizeDistribution.EXPONENTIAL, 400, 5,
                refresh_multiplier=2, sample_interval=150,
            )
        assert results["reference"] == results["vectorized"]

    def test_successive_refresh_calls_draw_independent_streams(self):
        """Five distributions swept on one experiment must not replay one
        churn realization; and the per-call streams must still agree
        across backends."""
        per_backend = {}
        for name in BACKENDS:
            experiment = PlacementExperiment(seed=6, backend=name)
            per_backend[name] = [
                experiment.run_refresh(
                    FileSizeDistribution.EXPONENTIAL, 800, 10, refresh_multiplier=2
                )
                for _ in range(2)
            ]
        first_call, second_call = per_backend["reference"]
        assert first_call.max_usage != second_call.max_usage
        assert per_backend["reference"] == per_backend["vectorized"]

    def test_refresh_rejects_bad_knobs(self):
        experiment = PlacementExperiment(seed=0)
        with pytest.raises(ValueError):
            experiment.run_refresh(
                FileSizeDistribution.EXPONENTIAL, 100, 4, batch_size=0
            )
        with pytest.raises(ValueError):
            experiment.run_refresh(
                FileSizeDistribution.EXPONENTIAL, 100, 4, sample_interval=0
            )


def _greedy_workload(seed, n_sectors, n_files, replicas, equal_caps=False):
    rng = np.random.default_rng(seed)
    placements = [
        list(rng.integers(0, n_sectors, replicas)) for _ in range(n_files)
    ]
    values = [float(v) for v in rng.integers(1, 6, n_files)]
    if equal_caps:
        capacities = [1.0] * n_sectors
    else:
        capacities = [float(c) for c in rng.integers(1, 4, n_sectors)]
    return capacities, placements, values


class TestGreedyKernelEquivalence:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    @pytest.mark.parametrize(
        "shape",
        ((30, 150, 2), (60, 400, 3), (120, 500, 5)),
    )
    @pytest.mark.parametrize("budget", (0.2, 0.5))
    def test_choose_sectors_identical(self, seed, shape, budget):
        n_sectors, n_files, replicas = shape
        capacities, placements, values = _greedy_workload(
            seed, n_sectors, n_files, replicas
        )
        chosen = [
            GreedyCapacityAdversary(seed=seed, backend=name).choose_sectors(
                capacities, placements, values, budget
            )
            for name in BACKENDS
        ]
        assert chosen[0] == chosen[1]

    def test_attack_outcomes_identical(self):
        capacities, placements, values = _greedy_workload(4, 50, 300, 3, equal_caps=True)
        outcomes = [
            GreedyCapacityAdversary(seed=4, backend=name).attack(
                capacities, placements, values, 0.4
            )
            for name in BACKENDS
        ]
        assert outcomes[0] == outcomes[1]

    def test_edge_cases_agree(self):
        for name in BACKENDS:
            adversary = GreedyCapacityAdversary(backend=name)
            # Zero budget corrupts nothing on either backend.
            assert adversary.choose_sectors([1.0] * 5, [[0, 1]], [1.0], 0.0) == set()
            # Files with empty placements never finish anything.
            assert adversary.choose_sectors(
                [1.0] * 3, [[], [0]], [5.0, 1.0], 1.0
            ) == {0, 1, 2}


def _batch_draw(name, weights, ops, free=None, entropy=0):
    return get_backend(name).batch_weighted_draw(
        sampler_stream(entropy, 0), weights, ops, free=free
    )


def _assert_batch_identical(weights, ops, free=None, entropy=0):
    reference = _batch_draw("reference", weights, ops, free=free, entropy=entropy)
    vectorized = _batch_draw("vectorized", weights, ops, free=free, entropy=entropy)
    assert np.array_equal(reference.keys, vectorized.keys)
    assert reference.attempts == vectorized.attempts
    assert reference.collisions == vectorized.collisions
    return reference


class TestBatchWeightedDrawEquivalence:
    @pytest.mark.parametrize("entropy", (0, 7, 23))
    @pytest.mark.parametrize(
        "n_slots,n_draws",
        ((1, 50), (3, 2000), (40, 5000), (500, 3000)),
    )
    def test_draw_batches_identical(self, entropy, n_slots, n_draws):
        """Seed/shape grid: big draw batches cross multiple candidate-chunk
        refills of the vectorized engine."""
        rng = np.random.default_rng(entropy + n_slots)
        weights = rng.integers(0, 1 << 16, n_slots).tolist()
        weights[0] = max(weights[0], 1)  # keep the table drawable
        _assert_batch_identical(weights, [("draw", n_draws)], entropy=entropy)

    @pytest.mark.parametrize("entropy", (0, 5))
    def test_interleaved_updates_identical(self, entropy):
        """Weight updates between draw batches force the vectorized
        engine's segment replay mid-stream."""
        weights = [10, 0, 7, 1000, 3]
        ops = [
            ("draw", 100),
            ("set", 3, 0),
            ("draw", 100),
            ("set", 1, 1 << 30),
            ("set", 0, 0),
            ("draw", 300),
            ("draw", 0),
            ("set", 1, 1),
            ("draw", 64),
        ]
        result = _assert_batch_identical(weights, ops, entropy=entropy)
        keys = result.keys
        # Removed slots never reappear in later segments.
        assert not np.any(keys[100:200] == 3)
        assert not np.any(keys[200:] == 0)

    def test_two_word_candidates_identical(self):
        """Totals at/above 2**32 consume two uint32 words per candidate."""
        weights = [1 << 40, (1 << 41) + 17, 5, 0]
        ops = [("draw", 500), ("set", 0, (1 << 45) - 3), ("draw", 500)]
        for entropy in (0, 1, 2):
            _assert_batch_identical(weights, ops, entropy=entropy)

    def test_place_semantics_identical(self):
        """Resample-on-full placement: successes debit the free table,
        exhausted attempts yield -1, collisions are counted."""
        weights = [10, 10, 10]
        free = [100, 60, 0]
        ops = [("place", 60, 8)] * 4 + [("draw", 3)] + [("place", 5, 8)] * 6
        result = _assert_batch_identical(weights, ops, free=free, entropy=3)
        placed = np.concatenate([result.keys[:4], result.keys[7:]])
        # Slot 2 never accepts (zero free capacity) and only one size-60
        # replica fits per remaining slot, so later size-60 places fail.
        assert not np.any(placed == 2)
        assert sorted(result.keys[:4].tolist()) == [-1, -1, 0, 1]
        assert result.collisions > 0

    def test_place_never_succeeds_when_nothing_fits(self):
        for name in BACKENDS:
            result = _batch_draw(
                name, [5, 5], [("place", 10, 7)], free=[9, 9], entropy=1
            )
            assert result.keys.tolist() == [-1]
            assert result.attempts == 7
            assert result.collisions == 7

    def test_zero_total_raises_on_both(self):
        for name in BACKENDS:
            with pytest.raises(ValueError, match="empty or zero-weight"):
                _batch_draw(name, [0, 0, 0], [("draw", 1)])
            # ...including when a set op drains the table mid-batch.
            with pytest.raises(ValueError, match="empty or zero-weight"):
                _batch_draw(name, [4], [("draw", 2), ("set", 0, 0), ("draw", 1)])

    def test_total_weight_bound_raises_on_both(self):
        for name in BACKENDS:
            # A single over-bound weight is rejected at validation, even
            # transiently (before any draw could trip the total guard).
            with pytest.raises(ValueError, match="2\\*\\*62"):
                _batch_draw(name, [1], [("set", 0, MAX_TOTAL_WEIGHT), ("set", 0, 5)])
            with pytest.raises(ValueError, match="2\\*\\*62"):
                _batch_draw(name, [MAX_TOTAL_WEIGHT], [("draw", 1)])
            with pytest.raises(ValueError, match="2\\*\\*62"):
                _batch_draw(name, [1 << 63], [("draw", 1)])
            # In-bound weights whose *total* crosses the bound trip the
            # draw-time guard instead.
            with pytest.raises(ValueError, match="2\\*\\*62"):
                _batch_draw(
                    name, [MAX_TOTAL_WEIGHT // 2, MAX_TOTAL_WEIGHT // 2], [("draw", 1)]
                )

    def test_malformed_requests_rejected_identically(self):
        cases = [
            (([1, 2], [("bogus", 1)]), {}),
            (([1, 2], [("set", 5, 1)]), {}),
            (([1, 2], [("set", 0, -1)]), {}),
            (([1, 2], [("draw", -1)]), {}),
            (([1, 2], [("place", 1, 0)]), {"free": [1, 1]}),
            (([1, 2], [("place", 1, 3)]), {}),  # place without a free table
            (([-1, 2], [("draw", 1)]), {}),
            (([1, 2], [("draw", 1)]), {"free": [1]}),  # shape mismatch
        ]
        for (weights, ops), kwargs in cases:
            for name in BACKENDS:
                with pytest.raises(ValueError):
                    _batch_draw(name, weights, ops, **kwargs)

    def test_inputs_are_never_mutated(self):
        weights = np.asarray([3, 4, 5], dtype=np.int64)
        free = np.asarray([50, 50, 50], dtype=np.int64)
        for name in BACKENDS:
            _batch_draw(
                name, weights, [("set", 0, 9), ("place", 10, 4), ("draw", 5)],
                free=free, entropy=2,
            )
            assert weights.tolist() == [3, 4, 5]
            assert free.tolist() == [50, 50, 50]

    def test_dedicated_streams_differ_by_spawn_key(self):
        """Two calls on different spawn keys draw different sequences --
        the domain separation select/refresh call sites rely on."""
        weights = [1] * 16
        a = get_backend("vectorized").batch_weighted_draw(
            sampler_stream(4, 0), weights, [("draw", 64)]
        )
        b = get_backend("vectorized").batch_weighted_draw(
            sampler_stream(4, 1), weights, [("draw", 64)]
        )
        assert not np.array_equal(a.keys, b.keys)


class TestScenarioBackendThreading:
    def test_resolve_params_concretises_auto(self, monkeypatch):
        from repro.runner.registry import get_scenario, load_builtin_scenarios, resolve_params

        load_builtin_scenarios()
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        for scenario_name in (
            "table3", "robustness", "churn", "retrieval_load", "segmentation"
        ):
            params = resolve_params(get_scenario(scenario_name))
            assert params["backend"] == "vectorized"
            params = resolve_params(
                get_scenario(scenario_name), {"backend": "reference"}
            )
            assert params["backend"] == "reference"
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert resolve_params(get_scenario("table3"))["backend"] == "reference"

    def test_resolve_params_rejects_unknown_backend(self):
        from repro.runner.registry import (
            ScenarioError,
            get_scenario,
            load_builtin_scenarios,
            resolve_params,
        )

        load_builtin_scenarios()
        with pytest.raises(ScenarioError, match="backend"):
            resolve_params(get_scenario("table3"), {"backend": "cuda"})

    def test_manifests_record_concrete_backend_and_rows_match(self, monkeypatch):
        from repro.runner.executor import run_scenario

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        overrides = {
            "lambdas": (0.5,),
            "n_sectors": 60,
            "n_files": 80,
            "k": 3,
            "trials": 2,
        }
        manifests = {
            name: run_scenario(
                "robustness", {**overrides, "backend": name}, seed=5
            )
            for name in BACKENDS
        }
        for name in BACKENDS:
            assert manifests[name].params["backend"] == name
        # Identical trial rows: the backend changes speed, never results.
        assert [
            {key: value for key, value in row.items()}
            for row in manifests["reference"].rows
        ] == [dict(row) for row in manifests["vectorized"].rows]
