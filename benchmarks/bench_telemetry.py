"""Telemetry overhead gate: traced vs untraced churn, as JSON.

Runs the pinned churn benchmark shape with telemetry disabled and
enabled (spans *and* metrics recorders together -- the full ``--trace
--metrics`` observability surface), verifies the two runs' per-trial
rows are byte-identical (the inertness contract from
``docs/observability.md``), and gates the enabled-path overhead at
``--max-overhead-pct`` (CI uses 5%).

The true recording cost (a few hundred buffer appends per run) is far
below shared-runner scheduling noise, so the measurement is built to
suppress that noise rather than average over it: traced and untraced
runs are *interleaved* in order-balanced pairs (off-on, on-off, ...),
and each mode's wall is the best of its N samples -- minima converge to
the machine floor under load drift where means do not.  Writes a
machine-readable ``BENCH_telemetry.json`` for the `trace-smoke` job to
upload.  Exits non-zero when rows differ or the overhead gate fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --out BENCH_telemetry.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro import telemetry
from repro.runner.executor import run_scenario
from repro.runner.registry import load_builtin_scenarios
from repro.telemetry import metrics

#: The pinned churn shape: ~1 s per run, crossing every instrumented
#: layer (executor trials, protocol adds/refreshes, kernel draws).
CHURN_PARAMS = {"trials": 2, "cycles": 3, "files": 4}
CHURN_SEED = 0


def one_run(enabled: bool):
    """One timed churn run; returns (wall, manifest)."""
    telemetry.reset()
    metrics.reset()
    if enabled:
        telemetry.enable()
        metrics.enable()
    started = time.perf_counter()
    manifest = run_scenario("churn", overrides=CHURN_PARAMS, seed=CHURN_SEED)
    wall = time.perf_counter() - started
    telemetry.reset()
    metrics.reset()
    return wall, manifest


def timed_modes(repeats: int):
    """Best-of-``repeats`` wall per mode, sampled in order-balanced pairs."""
    walls = {False: [], True: []}
    manifests = {}
    for index in range(repeats):
        # Alternate which mode runs first so monotone load drift biases
        # neither side.
        order = (False, True) if index % 2 == 0 else (True, False)
        for enabled in order:
            wall, manifests[enabled] = one_run(enabled)
            walls[enabled].append(wall)
    return min(walls[False]), min(walls[True]), manifests[False], manifests[True]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_telemetry.json", help="artifact path")
    parser.add_argument(
        "--repeats", type=int, default=6, help="best-of-N wall per mode (default 6)"
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=5.0,
        help="fail when traced overhead exceeds this percentage (default 5)",
    )
    args = parser.parse_args(argv)

    load_builtin_scenarios()
    one_run(enabled=False)  # warm code paths and allocator before timing
    untraced_wall, traced_wall, untraced, traced = timed_modes(args.repeats)

    # Inertness first: the overhead number is meaningless if tracing
    # perturbed the rows.
    rows_identical = traced.trial_rows_equal(untraced)
    overhead_pct = 100.0 * (traced_wall - untraced_wall) / untraced_wall
    spans = traced.telemetry["spans"] if traced.telemetry else {}
    events_recorded = sum(entry["count"] for entry in spans.values())
    # Churn crosses the protocol layer, so the metrics recorder must have
    # captured its deposit/backlog gauge series (histograms come from the
    # lifecycle and retrieval layers, which churn does not drive).
    metric_series = sorted(traced.metrics["series"]) if traced.metrics else []

    artifact = {
        "scenario": "churn",
        "params": CHURN_PARAMS,
        "seed": CHURN_SEED,
        "repeats": args.repeats,
        "untraced_wall_s": round(untraced_wall, 6),
        "traced_wall_s": round(traced_wall, 6),
        "overhead_pct": round(overhead_pct, 3),
        "max_overhead_pct": args.max_overhead_pct,
        "rows_identical": rows_identical,
        "spans_recorded": events_recorded,
        "metric_series_recorded": metric_series,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"telemetry overhead: untraced={untraced_wall:.3f}s "
        f"traced={traced_wall:.3f}s overhead={overhead_pct:+.2f}% "
        f"(gate {args.max_overhead_pct:.1f}%) spans={events_recorded} "
        f"metric_series={len(metric_series)} rows_identical={rows_identical}"
    )
    if not rows_identical:
        print("FAIL: traced rows differ from untraced rows")
        return 1
    if not spans:
        print("FAIL: traced run recorded no spans")
        return 1
    if not metric_series:
        print("FAIL: traced run recorded no metric gauge series")
        return 1
    if overhead_pct > args.max_overhead_pct:
        print(
            f"FAIL: telemetry overhead {overhead_pct:.2f}% exceeds "
            f"{args.max_overhead_pct:.1f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
