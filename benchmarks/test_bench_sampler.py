"""Micro-benchmark: the ``batch_weighted_draw`` kernel.

The ``RandomSector()`` weighted sampler became the dominant hot path of
the end-to-end scenarios once refresh and adversary selection were
vectorized; this gate pins its kernelisation the same way
``test_bench_refresh.py`` pins the refresh loop:

* ``test_sampler_throughput[reference|vectorized]`` -- the pinned draw
  workload on each backend, reported as draws/second;
* ``test_vectorized_sampler_speedup`` -- the acceptance gate: vectorized
  batched draws must run the pinned shape at least
  ``MIN_SAMPLER_SPEEDUP``x faster than the Fenwick oracle *while
  returning identical key sequences, attempt and collision counts*.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_sampler.py -q``.
"""

from __future__ import annotations

import pytest

from kernel_shapes import (
    MIN_SAMPLER_SPEEDUP,
    SAMPLER_DRAWS,
    SAMPLER_PLACES,
    best_wall,
    run_sampler,
)


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_sampler_throughput(benchmark, backend, record):
    result = benchmark.pedantic(lambda: run_sampler(backend), rounds=3, iterations=1)
    keys, attempts, collisions = result
    assert attempts >= SAMPLER_DRAWS + SAMPLER_PLACES
    draws_per_second = attempts / benchmark.stats["min"]
    record(
        f"sampler draws/s [{backend}]",
        f"{draws_per_second:,.0f}",
        "n/a (engineering gate)",
    )


def test_vectorized_sampler_speedup(record):
    assert run_sampler("reference") == run_sampler("vectorized"), (
        "batch_weighted_draw backends disagree at the pinned shape"
    )
    reference_wall = best_wall(lambda: run_sampler("reference"))
    vectorized_wall = best_wall(lambda: run_sampler("vectorized"))
    speedup = reference_wall / vectorized_wall
    if speedup < MIN_SAMPLER_SPEEDUP:  # one retry at higher N before failing
        reference_wall = best_wall(lambda: run_sampler("reference"), repeats=5)
        vectorized_wall = best_wall(lambda: run_sampler("vectorized"), repeats=5)
        speedup = reference_wall / vectorized_wall
    record(
        "sampler vectorized speedup",
        f"{speedup:.1f}x",
        f">= {MIN_SAMPLER_SPEEDUP}x (acceptance gate)",
    )
    assert speedup >= MIN_SAMPLER_SPEEDUP, (
        f"vectorized batch_weighted_draw is only {speedup:.2f}x faster than "
        f"reference (required {MIN_SAMPLER_SPEEDUP}x)"
    )
