"""Micro-benchmark: the ``PlacementExperiment.run_refresh`` hot path.

PR 3 pinned this workload as the baseline for the kernel-extraction PR;
the refresh loop now lives in :mod:`repro.kernels` behind a backend
seam.  These benchmarks keep the same fixed shape (defined once in
:mod:`kernel_shapes`, shared with ``bench_kernels.py``) so numbers stay
comparable across commits, and now measure both backends:

* ``test_refresh_loop_throughput[reference|vectorized]`` -- the refresh
  loop on each backend, reported as refreshes/second;
* ``test_vectorized_refresh_speedup`` -- the acceptance gate for the
  kernel layer: the ``vectorized`` backend must run the pinned shape at
  least 5x faster than the ``reference`` oracle *while producing an
  identical PlacementResult*;
* ``test_refresh_vs_reallocate_cost_ratio`` -- the residual per-move tax:
  refresh wall time over reallocate wall time for the same number of
  placement decisions, per backend.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_refresh.py -q``.
"""

from __future__ import annotations

import time

import pytest

from kernel_shapes import (
    MIN_REFRESH_SPEEDUP,
    REFRESH_DISTRIBUTION,
    REFRESH_MULTIPLIER,
    REFRESH_N_BACKUPS,
    REFRESH_N_SECTORS,
    best_wall,
    run_refresh,
)
from repro.sim.placement import PlacementExperiment


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_refresh_loop_throughput(benchmark, record, backend):
    """Refreshes/second of each kernel backend at the pinned shape."""
    result = benchmark.pedantic(lambda: run_refresh(backend), rounds=3, iterations=1)
    total_refreshes = REFRESH_MULTIPLIER * REFRESH_N_BACKUPS
    assert result.rounds == total_refreshes
    per_second = total_refreshes / benchmark.stats.stats.mean
    record(
        f"run_refresh throughput [{backend}] ({total_refreshes} refreshes)",
        f"{per_second:,.0f} refreshes/s",
        "reference = pre-kernel baseline; vectorized = grouped-scan kernel",
    )


def test_vectorized_refresh_speedup(record):
    """The vectorized kernel is >= 5x faster and bit-identical.

    Retries once with more repeats before failing, so a single scheduling
    hiccup on a loaded machine cannot flake the gate.
    """
    reference_result = run_refresh("reference")
    vectorized_result = run_refresh("vectorized")
    assert vectorized_result == reference_result  # identical PlacementResult

    speedup = best_wall(lambda: run_refresh("reference")) / best_wall(
        lambda: run_refresh("vectorized")
    )
    if speedup < MIN_REFRESH_SPEEDUP:  # pragma: no cover - timing-dependent retry
        speedup = best_wall(lambda: run_refresh("reference"), 5) / best_wall(
            lambda: run_refresh("vectorized"), 5
        )
    record(
        "run_refresh vectorized speedup over reference",
        f"{speedup:.1f}x",
        f"kernel PR acceptance: >= {MIN_REFRESH_SPEEDUP:.0f}x at the pinned shape",
    )
    assert speedup >= MIN_REFRESH_SPEEDUP


def test_refresh_vs_reallocate_cost_ratio(record):
    """How much slower one refreshed placement is than one reallocated one.

    Both settings decide the same number of placements; reallocate does
    them in ``REFRESH_MULTIPLIER`` bulk bincount rounds, refresh must
    replay every move's effect on a live placement.  A refresh can never
    be as cheap as a bulk bincount, but the vectorized kernel must shrink
    the per-backend ratio relative to the scalar reference loop -- that
    shrinkage *is* the extracted headroom.
    """
    started = time.perf_counter()
    PlacementExperiment(seed=0).run_reallocate(
        REFRESH_DISTRIBUTION,
        REFRESH_N_BACKUPS,
        REFRESH_N_SECTORS,
        rounds=REFRESH_MULTIPLIER,
    )
    reallocate_wall = max(time.perf_counter() - started, 1e-9)

    ratios = {}
    for backend in ("reference", "vectorized"):
        ratios[backend] = best_wall(lambda: run_refresh(backend), 1) / reallocate_wall
        record(
            f"run_refresh / run_reallocate wall ratio [{backend}]",
            f"{ratios[backend]:.1f}x",
            "same placement-decision count; lower is better",
        )
    assert 1.0 < ratios["vectorized"] < ratios["reference"]
