"""Micro-benchmark: the ``PlacementExperiment.run_refresh`` hot path.

The ROADMAP flags the refresh loop as the next optimisation target: the
reallocate setting is fully vectorised, but each refresh in ``run_refresh``
updates sector usage one move at a time in pure Python, and that loop
dominates table3's wall time.  These benchmarks pin a baseline for the
next perf PR, at a fixed workload so numbers are comparable across
commits:

* ``test_refresh_loop_throughput`` -- the pure refresh loop itself
  (placement excluded from the measured region is impossible with the
  public API, but placement is vectorised and ~1% of the time at this
  shape), reported as refreshes/second via pytest-benchmark's ops metric;
* ``test_refresh_vs_reallocate_cost_ratio`` -- the scalar-loop tax:
  refresh wall time over reallocate wall time for the same number of
  placement decisions.  A successful optimisation collapses this ratio
  toward 1.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_refresh.py -q``.
"""

from __future__ import annotations

import time

from repro.sim.placement import PlacementExperiment
from repro.sim.workload import FileSizeDistribution

#: Fixed workload shape: big enough that per-refresh cost dominates
#: setup, small enough to finish a round in well under a second.
N_BACKUPS = 20_000
N_SECTORS = 200
REFRESH_MULTIPLIER = 10  # => 200_000 refreshes per measured round
DISTRIBUTION = FileSizeDistribution.EXPONENTIAL


def test_refresh_loop_throughput(benchmark, record):
    """Baseline refreshes/second of the scalar update loop."""

    def run():
        return PlacementExperiment(seed=0).run_refresh(
            DISTRIBUTION,
            N_BACKUPS,
            N_SECTORS,
            refresh_multiplier=REFRESH_MULTIPLIER,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    total_refreshes = REFRESH_MULTIPLIER * N_BACKUPS
    assert result.rounds == total_refreshes
    per_second = total_refreshes / benchmark.stats.stats.mean
    record(
        f"run_refresh throughput ({total_refreshes} refreshes)",
        f"{per_second:,.0f} refreshes/s",
        "baseline for the refresh-loop perf PR",
    )


def test_refresh_vs_reallocate_cost_ratio(record):
    """How much slower one refreshed placement is than one vectorised one.

    Both settings decide ``N_BACKUPS * REFRESH_MULTIPLIER`` placements;
    reallocate does them in ``REFRESH_MULTIPLIER`` vectorised rounds,
    refresh one by one.  The ratio is the headroom a vectorised refresh
    loop could reclaim.
    """
    started = time.perf_counter()
    PlacementExperiment(seed=0).run_reallocate(
        DISTRIBUTION, N_BACKUPS, N_SECTORS, rounds=REFRESH_MULTIPLIER
    )
    reallocate_wall = time.perf_counter() - started

    started = time.perf_counter()
    PlacementExperiment(seed=0).run_refresh(
        DISTRIBUTION, N_BACKUPS, N_SECTORS, refresh_multiplier=REFRESH_MULTIPLIER
    )
    refresh_wall = time.perf_counter() - started

    ratio = refresh_wall / reallocate_wall if reallocate_wall > 0 else float("inf")
    # The scalar loop is known to be at least several times slower; a
    # future vectorisation PR should drive this assertion's bound down.
    assert ratio > 1.0
    record(
        "run_refresh / run_reallocate wall ratio (same placement count)",
        f"{ratio:.1f}x",
        "-> 1.0x after vectorising the refresh loop",
    )
