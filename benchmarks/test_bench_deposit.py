"""Benchmark E6: Theorem 4 -- deposit ratio for full compensation.

Reproduces the Section V-B4 example (gamma_deposit = 0.0046 at k=20,
Ns=1e6, capPara=1e3, lambda=0.5) and runs the end-to-end compensation check
on the real protocol state machine: crash half the sectors and verify that
confiscated deposits fully cover the compensation owed for lost files.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import theorem4_deposit_ratio_bound
from repro.experiments import deposit


def test_theorem4_paper_example(benchmark, record):
    """gamma_deposit = 0.0046 at the paper's parameters."""

    def run():
        return theorem4_deposit_ratio_bound(lam=0.5, k=20, ns=10**6, cap_para=10**3)

    bound = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bound == pytest.approx(0.0046, abs=0.0002)
    record("Theorem 4 deposit ratio (lambda=0.5)", f"{bound:.4f}", "0.0046")


def test_theorem4_bound_sweep(benchmark, record):
    """Deposit ratio grows with the assumed adversary budget lambda."""

    def run():
        return deposit.run_bound_sweep(lambdas=(0.1, 0.25, 0.5, 0.75))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds = [row["gamma_deposit_bound"] for row in rows]
    assert bounds == sorted(bounds)
    record(
        "Theorem 4 sweep (lambda=0.1..0.75)",
        ", ".join(f"{b:.4f}" for b in bounds),
        "monotone in lambda; 0.0046 at 0.5",
    )


def test_end_to_end_full_compensation(benchmark, record):
    """Protocol-level check: deposits cover every lost file at lambda=0.5."""

    def run():
        return deposit.run_protocol_check(
            n_providers=24, files=48, corrupt_fraction=0.5, deposit_ratio=0.25, k=4, seed=3
        )

    check = benchmark.pedantic(run, rounds=1, iterations=1)
    assert check["full_compensation"]
    assert check["shortfalls"] == 0
    record(
        "End-to-end compensation at lambda=0.5 (lost vs compensated value)",
        f"{check['lost_value']} vs {check['compensated_value']}",
        "full compensation (Theorem 4)",
    )


def test_deposit_ratio_insensitive_to_network_size(benchmark, record):
    """The third Theorem-4 term grows only logarithmically with Ns."""

    def run():
        return [
            theorem4_deposit_ratio_bound(lam=0.5, k=20, ns=ns, cap_para=10**3)
            for ns in (10**4, 10**6, 10**8)
        ]

    bounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bounds[-1] < 2 * bounds[0]
    record(
        "Theorem 4 vs network size (Ns=1e4, 1e6, 1e8)",
        ", ".join(f"{b:.4f}" for b in bounds),
        "grows only logarithmically in Ns",
    )
