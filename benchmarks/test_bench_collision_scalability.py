"""Benchmarks E4 and E7: Theorem 2 (collision probability) and Theorem 1
(capacity scalability).

Theorem 2: the probability that any sector's free capacity drops below 1/8
of its capacity is bounded by ``Ns * exp(-0.144 * capacity/size)``; at the
paper's operating point (capacity/size >= 1000, Ns <= 1e12) it is below
1e-50.  Theorem 1: the total raw file size storable grows (almost) linearly
with total sector capacity.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import theorem2_collision_probability_bound
from repro.experiments import collision, scalability


def test_theorem2_paper_operating_point(benchmark, record):
    """Bound below 1e-50 at capacity/size=1000 and Ns=1e12."""

    def run():
        return theorem2_collision_probability_bound(1e12, 1000, 1)

    bound = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bound < 1e-50
    record("Theorem 2 bound (ratio=1000, Ns=1e12)", f"{bound:.2e}", "< 1e-50")


def test_theorem2_monte_carlo_consistency(benchmark, record):
    """Empirical collision frequency respects the bound where it is checkable."""

    def run():
        return collision.run_monte_carlo(ratios=(16, 32, 64), n_sectors=150, trials=60)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    loose = [row for row in rows if row["capacity/size"] in (16, 32)]
    assert all(row["bound_holds"] for row in loose)
    tight = next(row for row in rows if row["capacity/size"] == 64)
    record(
        "Theorem 2 empirical frequency at ratio 16/32/64",
        ", ".join(str(row["empirical_prob"]) for row in rows),
        "collisions vanish as the ratio grows",
    )
    assert tight["empirical_prob"] < 0.2


def test_theorem1_linear_scalability(benchmark, record):
    """Storable size scales linearly with Ns for a fixed file distribution."""

    def run():
        return scalability.run_bound_sweep(ns_values=(10**3, 10**4, 10**5, 10**6))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    numeric = [row for row in rows if isinstance(row["Ns"], int)]
    sizes = [float(row["max_storable_bytes"]) for row in numeric]
    for smaller, larger in zip(sizes, sizes[1:]):
        assert larger == pytest.approx(10 * smaller, rel=0.01)
    record(
        "Theorem 1 storable size growth (Ns x10 steps)",
        "linear (x10 per step)",
        "~O(Ns * minCapacity), Sec. V-B1",
    )


def test_theorem1_fill_until_refusal(benchmark, record):
    """Filling a live deployment stops within the Theorem 1 bound."""

    def run():
        return scalability.run_fill_experiment(n_providers=16, k=3, file_size_fraction=0.03)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["within_bound"]
    record(
        "Theorem 1 fill experiment (stored raw bytes vs bound)",
        f"{result['stored_raw_bytes']} <= {result['theorem1_bound_bytes']} (+1 file)",
        "network refuses files beyond the design limits",
    )
