"""Benchmark E5: Theorem 3 robustness -- lost value under capacity corruption.

Reproduces the Section V-B3 analysis: the analytic bound at the paper's
exact parameters (k=20, Ns=1e6, capPara=1e3, lambda=0.5), a Monte-Carlo
corruption of an i.i.d. random placement at scaled parameters (random and
greedy adversaries), and the storage-randomness ablation (random vs
clustered placement) that explains *why* FileInsurer is robust.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import expected_lost_value_fraction, theorem3_loss_ratio_bound
from repro.experiments import robustness


def test_theorem3_bound_at_paper_parameters(benchmark, record):
    """Analytic bound across lambda at k=20, Ns=1e6, capPara=1e3."""

    def run():
        return robustness.run_bound_sweep(
            lambdas=(0.1, 0.3, 0.5, 0.7), k=20, ns=10**6, cap_para=10**3, gamma_m_v=0.005
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(rows) == 4
    # The first two max-terms of the paper's example evaluate to 5e-6 and 1e-3.
    assert 5 * 0.5**20 == pytest.approx(5e-6, rel=0.05)
    assert 0.5**10 == pytest.approx(0.001, rel=0.05)
    record(
        "Theorem 3 terms at lambda=0.5 (5*l^k, l^(k/2))",
        f"{5 * 0.5**20:.1e}, {0.5**10:.1e}",
        "5e-6, 0.001 (Sec. V-B3 example)",
    )
    record(
        "Theorem 3 full bound at lambda=0.5, gamma_m_v=0.005",
        f"{theorem3_loss_ratio_bound(0.5, 20, 1e6, 1e3, 0.005):.3f}",
        "paper example states 0.001 (see EXPERIMENTS.md note)",
    )


def test_monte_carlo_loss_vs_bound(benchmark, record):
    """Simulated loss at scaled parameters stays below the analytic bound."""

    def run():
        return robustness.run_monte_carlo(
            lambdas=(0.3, 0.5), n_sectors=1000, n_files=1000, k=8, trials=3
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        assert float(row["sim_loss_random(max)"]) <= float(row["theorem3_bound"]) + 1e-9
        assert float(row["sim_loss_targeted(max)"]) <= float(row["theorem3_bound"]) + 1e-9
    half = next(row for row in rows if row["lambda"] == 0.5)
    record(
        "Robustness Monte-Carlo (lambda=0.5, k=8): loss random/targeted/bound",
        f"{half['sim_loss_random(max)']}/{half['sim_loss_targeted(max)']}/{half['theorem3_bound']}",
        "loss stays below the Theorem 3 bound",
    )


def test_random_loss_tracks_lambda_to_k(benchmark, record):
    """Under random corruption the realised loss concentrates near lambda^k."""

    def run():
        losses = [
            robustness.simulate_loss(2000, 4000, 4, 0.5, seed=t, targeted=False)
            for t in range(3)
        ]
        return sum(losses) / len(losses)

    mean_loss = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = expected_lost_value_fraction(0.5, 4)
    assert mean_loss == pytest.approx(expected, rel=0.5)
    record(
        "Random-corruption loss vs lambda^k (lambda=0.5, k=4)",
        f"{mean_loss:.4f}",
        f"{expected:.4f}",
    )


def test_storage_randomness_ablation(benchmark, record):
    """Random i.i.d. placement vs clustered placement under a greedy attack."""

    def run():
        return robustness.run_placement_contrast(
            lam=0.5, n_sectors=600, n_files=600, k=5, seed=0
        )

    contrast = benchmark.pedantic(run, rounds=1, iterations=1)
    assert contrast["loss_random_placement"] < contrast["loss_clustered_placement"]
    record(
        "Ablation: targeted loss random vs clustered placement",
        f"{contrast['loss_random_placement']:.3f} vs {contrast['loss_clustered_placement']:.3f}",
        "randomness is what provides robustness (Sec. V-B2)",
    )
