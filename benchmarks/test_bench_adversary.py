"""Micro-benchmark: the greedy capacity-adversary selection kernel.

Section V-C's targeted adversary is the second hot loop extracted into
:mod:`repro.kernels`.  The ``reference`` oracle rescans every candidate
sector against every file it hosts on every pick
(O(picks x sectors x files/sector)); the ``vectorized`` backend keeps
finishing-value scores incrementally and picks with one masked argmax
per corruption.  The pinned shape (defined once in
:mod:`kernel_shapes`, shared with ``bench_kernels.py``) mirrors the
``robustness`` scenario's Monte-Carlo geometry, scaled so the reference
loop stays under a second.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_adversary.py -q``.
"""

from __future__ import annotations

import pytest

from kernel_shapes import (
    ADVERSARY_N_FILES,
    ADVERSARY_N_SECTORS,
    ADVERSARY_REPLICAS,
    best_wall,
    run_greedy,
)


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_greedy_selection_throughput(benchmark, record, backend):
    """Wall time of one full greedy selection on each backend."""
    chosen = benchmark.pedantic(lambda: run_greedy(backend), rounds=3, iterations=1)
    assert chosen  # the budget admits at least one sector
    record(
        f"greedy choose_sectors [{backend}] "
        f"({ADVERSARY_N_FILES} files x {ADVERSARY_REPLICAS} replicas, "
        f"{ADVERSARY_N_SECTORS} sectors)",
        f"{benchmark.stats.stats.mean * 1000:.1f} ms",
        "reference = rescan-per-pick oracle; vectorized = incremental scores",
    )


def test_backends_choose_identical_sectors_and_vectorized_is_faster(record):
    """Cross-backend agreement plus the perf direction of the seam.

    The hard >= 5x acceptance gate lives in the refresh benchmark; here
    the vectorized backend must at least beat the oracle while choosing
    the exact same sector set (integer-valued files make score sums exact,
    so the tie-break comparison is bitwise).
    """
    assert run_greedy("reference") == run_greedy("vectorized")
    speedup = best_wall(lambda: run_greedy("reference")) / best_wall(
        lambda: run_greedy("vectorized")
    )
    if speedup < 1.0:  # pragma: no cover - timing-dependent retry
        speedup = best_wall(lambda: run_greedy("reference"), 5) / best_wall(
            lambda: run_greedy("vectorized"), 5
        )
    record(
        "greedy choose_sectors vectorized speedup over reference",
        f"{speedup:.1f}x",
        "must exceed 1x; typically >5x at the pinned shape",
    )
    assert speedup > 1.0
