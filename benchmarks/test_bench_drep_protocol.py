"""Benchmarks E8/E9 and design ablations.

* DRep ablation (Fig. 2 / Section III-D): expensive operations (PoRep
  setups + SNARKs) needed by DRep versus the naive whole-sector re-seal
  approach under churn.
* Protocol throughput: File Add placement rate and refresh servicing rate
  of the on-chain state machine (micro-benchmarks of the Fenwick-tree
  selector inside the real protocol).
* End-to-end lifecycle (Fig. 3): one file through Add -> CheckAlloc ->
  proof cycles -> refresh -> crash -> compensation in the full scenario.
"""

from __future__ import annotations

import pytest

from repro.chain.ledger import Ledger
from repro.core.drep import SectorContentPlan
from repro.core.file_descriptor import FileState
from repro.core.params import ProtocolParams
from repro.core.protocol import FileInsurerProtocol
from repro.crypto.prng import DeterministicPRNG
from repro.sim.scenario import DSNScenario, ScenarioConfig

KIB = 1024


def test_drep_vs_whole_sector_reseal(benchmark, record):
    """DRep needs far fewer SNARKs than resealing the sector per change."""

    def run():
        plan = SectorContentPlan(capacity=4096 * KIB, capacity_replica_size=64 * KIB)
        for i in range(60):
            plan.add_file(f"f{i}", (16 + i % 32) * KIB, sealed_elsewhere=(i % 3 != 0))
        for i in range(0, 60, 2):
            plan.remove_file(f"f{i}")
        return plan

    plan = benchmark.pedantic(run, rounds=1, iterations=1)
    drep_cost = plan.costs.total_expensive_operations()
    naive_cost = plan.naive_reseal_cost()
    assert drep_cost < naive_cost
    assert plan.costs.snark_proofs < plan.costs.porep_setups
    record(
        "DRep ablation: expensive ops (DRep vs whole-sector reseal)",
        f"{drep_cost} vs {naive_cost}",
        "DRep supports dynamic content at low cost (Sec. III-D)",
    )


def _build_protocol(providers: int, params: ProtocolParams) -> FileInsurerProtocol:
    ledger = Ledger()
    protocol = FileInsurerProtocol(
        params=params,
        ledger=ledger,
        prng=DeterministicPRNG.from_int(11, domain="bench-protocol"),
        health_oracle=lambda sector_id: True,
        auto_prove=True,
        charge_fees=False,
    )
    for index in range(providers):
        protocol.sector_register(f"prov-{index}", params.min_capacity)
    return protocol


def test_file_add_placement_throughput(benchmark, record):
    """File Add placements per second with 200 sectors (Fenwick selector)."""
    params = ProtocolParams.small_test().scaled(k=3, cap_para=1000.0)
    protocol = _build_protocol(200, params)
    size = 1024

    def add_batch():
        for _ in range(100):
            protocol.file_add("client", size, 1, b"\x00" * 32)

    benchmark(add_batch)
    record(
        "File Add placement throughput",
        f"{100 / benchmark.stats['mean']:.0f} adds/s (200 sectors, k=3)",
        "placement is O(k log Ns) per file",
    )


def test_proof_cycle_processing_rate(benchmark, record):
    """Auto CheckProof processing rate for 200 stored files."""
    params = ProtocolParams.small_test().scaled(k=3, cap_para=1000.0)
    protocol = _build_protocol(100, params)
    for _ in range(200):
        file_id = protocol.file_add("client", 512, 1, b"\x00" * 32)
        for index, entry in protocol.alloc.entries_for_file(file_id):
            protocol.file_confirm(protocol.sectors[entry.next].owner, file_id, index, entry.next)
    protocol.run_until_idle(max_time=protocol.now + 1.0)

    def one_cycle():
        protocol.advance_time(protocol.now + params.proof_cycle)

    benchmark.pedantic(one_cycle, rounds=5, iterations=1)
    record(
        "Auto CheckProof cycle for 200 files",
        f"{benchmark.stats['mean'] * 1000:.1f} ms per checkpoint",
        "periodic proof checking is cheap consensus work",
    )


def test_end_to_end_lifecycle(benchmark, record):
    """Fig. 3 walkthrough: store, maintain, crash, compensate."""

    def run():
        scenario = DSNScenario(
            ScenarioConfig(provider_count=4, sectors_per_provider=2, client_count=1, seed=5)
        )
        data = b"lifecycle payload" * 64
        file_id = scenario.store_file("client-0", "life", data, value=1)
        scenario.settle_uploads()
        scenario.run_cycles(6)
        hosts = {
            scenario.sector_map[s][0]
            for s in scenario.protocol.file_locations(file_id)
            if s is not None
        }
        for provider in hosts:
            scenario.crash_provider(provider)
        scenario.run_cycles(6)
        return scenario, file_id

    scenario, file_id = benchmark.pedantic(run, rounds=1, iterations=1)
    descriptor = scenario.protocol.files[file_id]
    assert descriptor.state == FileState.LOST
    assert descriptor.compensation_received >= descriptor.value
    record(
        "End-to-end lifecycle (Fig. 3): compensation after total crash",
        f"compensated {descriptor.compensation_received} of value {descriptor.value}",
        "full compensation for lost files",
    )
