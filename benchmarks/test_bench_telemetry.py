"""Benchmark: telemetry cost -- the no-op path and the enabled path.

Two properties keep ambient instrumentation acceptable on protocol hot
paths:

* **disabled**: a span call is one boolean check returning a shared
  no-op object (asserted here at a generous per-call budget, so a loaded
  CI box cannot flake the gate);
* **enabled**: recording never perturbs the deterministic rows, and its
  wall overhead on the pinned churn shape is small.  The hard <5% gate
  lives in ``benchmarks/bench_telemetry.py`` (best-of-N, run by the CI
  `trace-smoke` job); this test records the observed overhead for the
  summary table and only asserts a deliberately loose bound, because a
  single pytest-collected run has no repeats to suppress scheduler
  noise.
"""

from __future__ import annotations

import time

from repro import telemetry
from repro.runner.executor import run_scenario
from repro.runner.registry import load_builtin_scenarios

CHURN_PARAMS = {"trials": 2, "cycles": 3, "files": 4}


def test_disabled_span_overhead(benchmark, record):
    """200k disabled span entries; budget ~5 us/call (real cost ~100 ns)."""
    telemetry.reset()
    span = telemetry.span

    def spin():
        for _ in range(200_000):
            with span("bench.noop"):
                pass

    benchmark.pedantic(spin, rounds=1, iterations=1)
    wall = benchmark.stats.stats.min
    per_call_ns = wall / 200_000 * 1e9
    record("telemetry disabled span cost", f"{per_call_ns:.0f} ns/call", "~0 (no-op)")
    assert telemetry.events() == []
    assert wall < 1.0, f"disabled span path took {wall:.3f}s for 200k calls"


def test_enabled_run_rows_identical_and_overhead_recorded(benchmark, record):
    """Tracing a churn run must not change one row byte; overhead is small."""
    load_builtin_scenarios()
    telemetry.reset()
    started = time.perf_counter()
    untraced = run_scenario("churn", overrides=CHURN_PARAMS, seed=0)
    untraced_wall = time.perf_counter() - started

    def traced_run():
        telemetry.reset()
        telemetry.enable()
        try:
            return run_scenario("churn", overrides=CHURN_PARAMS, seed=0)
        finally:
            telemetry.reset()

    traced = benchmark.pedantic(traced_run, rounds=1, iterations=1)
    traced_wall = benchmark.stats.stats.min
    overhead_pct = 100.0 * (traced_wall - untraced_wall) / untraced_wall
    record(
        "telemetry enabled overhead (1 run, unrepeated)",
        f"{overhead_pct:+.1f}%",
        "<5% (gated best-of-N in bench_telemetry.py)",
    )
    assert traced.trial_rows_equal(untraced)
    assert traced.rows == untraced.rows
    assert traced.telemetry and traced.telemetry["spans"]
    # Loose single-shot bound: catches a pathological regression (an
    # accidentally quadratic buffer, tracing left enabled in a loop)
    # without flaking on scheduler noise.
    assert overhead_pct < 50.0, f"telemetry overhead {overhead_pct:.1f}% is pathological"
