"""Benchmark: columnar protocol core vs the object engine.

Gates the tentpole speedup of the structure-of-arrays engine: batched
``File Add`` placement and the vectorised proof-round sweep must beat the
object engine's per-file paths by ``MIN_SPEEDUP`` at the pinned
deployment shape (10^5 files over 10^4 providers; set ``REPRO_BENCH_XL=1``
for the paper-scale 10^6 files / 10^5 providers trial).  The object
engine is measured on a capped slice of the same deployment -- its
per-file cost is flat, so the per-file walls compare directly.

The module doubles as the ``BENCH_protocol.json`` artifact writer for the
bench-smoke CI job (``repro perf record`` understands the artifact)::

    PYTHONPATH=src python benchmarks/test_bench_protocol_columnar.py --out BENCH_protocol.json

or run the gates alone::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_protocol_columnar.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import time

from repro.chain.ledger import Ledger
from repro.core.columnar import ColumnarProtocol
from repro.core.params import ProtocolParams
from repro.core.protocol import FileInsurerProtocol
from repro.crypto.prng import DeterministicPRNG

ROOT = b"\x09" * 32
MB = 1 << 20

#: Pinned shapes.  ``object_cap`` bounds the object-engine slice: its
#: per-file cost is flat, so a few thousand files give a stable per-file
#: wall without spending minutes in the baseline.
SCALES = {
    "default": dict(files=100_000, providers=10_000, object_cap=4_000),
    "xl": dict(files=1_000_000, providers=100_000, object_cap=4_000),
}

FILE_SIZE = 8 * 1024
ADD_BATCH = 10_000

#: Acceptance gate: columnar File Add and proof-round throughput must be
#: at least this multiple of the object engine's.
MIN_SPEEDUP = 5.0

ENGINES = {"object": FileInsurerProtocol, "columnar": ColumnarProtocol}


def build_protocol(engine: str, providers: int, seed: int = 17):
    #: avg_refresh is the *mean* countdown (SampleExp(AvgRefresh)): 50
    #: proof cycles between refreshes, so the proof round measures the
    #: sweep itself, not the per-file refresh fallback; cap_para 100
    #: keeps the value cap clear of the file count.
    params = ProtocolParams.small_test().scaled(cap_para=100.0, avg_refresh=50.0)
    protocol = ENGINES[engine](
        params=params,
        ledger=Ledger(),
        prng=DeterministicPRNG.from_int(seed, domain="protocol-bench"),
        health_oracle=lambda sector_id: True,
        auto_prove=True,
        charge_fees=False,
        backend="vectorized",
        # Prefetch refresh-target draws: the draw sequence depends on
        # draw_batch, so both engines use the same value and stay
        # state-identical.
        draw_batch=64,
    )
    for index in range(providers):
        protocol.sector_register(f"prov-{index}", params.min_capacity)
    return protocol


def run_engine(engine: str, providers: int, files: int):
    """Fill ``files`` files, then run one proof round; returns the walls."""
    protocol = build_protocol(engine, providers)
    started = time.perf_counter()
    added = 0
    while added < files:
        batch = min(ADD_BATCH, files - added)
        ids = protocol.file_add_batch(
            "client", [FILE_SIZE] * batch, [1] * batch, ROOT
        )
        protocol.confirm_batch(ids)
        added += len(ids)
    add_wall = time.perf_counter() - started

    # Drain CheckAlloc, then time one full CheckProof round over every file.
    deadline = protocol.pending.peek_time()
    protocol.advance_time(deadline)
    assert protocol.files_stored == files
    started = time.perf_counter()
    protocol.advance_time(deadline + protocol.params.proof_cycle + 1.0)
    proof_wall = time.perf_counter() - started

    max_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "files": files,
        "add_wall_s": round(add_wall, 6),
        "add_files_per_s": round(files / add_wall, 1),
        "proof_wall_s": round(proof_wall, 6),
        "proof_files_per_s": round(files / proof_wall, 1),
        "max_rss_mb": round(max_rss_mb, 1),
    }


def run_bench(scale: str = "default"):
    """Both engines at ``scale``; the object engine on its capped slice."""
    shape = SCALES[scale]
    columnar = run_engine("columnar", shape["providers"], shape["files"])
    object_files = min(shape["object_cap"], shape["files"])
    reference = run_engine("object", shape["providers"], object_files)
    speedup = {
        "file_add": round(
            columnar["add_files_per_s"] / reference["add_files_per_s"], 2
        ),
        "proof_round": round(
            columnar["proof_files_per_s"] / reference["proof_files_per_s"], 2
        ),
    }
    return {
        "kind": "protocol_columnar_bench",
        "scale": scale,
        "providers": shape["providers"],
        "k": 3,
        "add_batch": ADD_BATCH,
        "file_size": FILE_SIZE,
        "columnar": columnar,
        "object": reference,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _gated_speedups(scale: str):
    """Measure; on a gate miss, re-measure once and keep the better run
    (shared CI runners stall individual timings, not both attempts)."""
    artifact = run_bench(scale)
    if min(artifact["speedup"].values()) < MIN_SPEEDUP:
        retry = run_bench(scale)
        if min(retry["speedup"].values()) > min(artifact["speedup"].values()):
            artifact = retry
    return artifact


def bench_scale():
    return "xl" if os.environ.get("REPRO_BENCH_XL") else "default"


# ----------------------------------------------------------------------
# pytest gates
# ----------------------------------------------------------------------
def test_columnar_speedup_gates(record):
    artifact = _gated_speedups(bench_scale())
    columnar, reference = artifact["columnar"], artifact["object"]
    record(
        f"columnar File Add [{artifact['scale']}]",
        f"{columnar['add_files_per_s']:,.0f} files/s "
        f"({artifact['speedup']['file_add']:.1f}x object)",
        f">= {MIN_SPEEDUP}x (engineering gate)",
    )
    record(
        f"columnar proof round [{artifact['scale']}]",
        f"{columnar['proof_files_per_s']:,.0f} files/s "
        f"({artifact['speedup']['proof_round']:.1f}x object)",
        f">= {MIN_SPEEDUP}x (engineering gate)",
    )
    assert columnar["files"] == SCALES[artifact["scale"]]["files"]
    assert reference["files"] > 0
    assert artifact["speedup"]["file_add"] >= MIN_SPEEDUP
    assert artifact["speedup"]["proof_round"] >= MIN_SPEEDUP
    # The columnar run keeps peak RSS bounded even at the XL scale.
    assert columnar["max_rss_mb"] < 8192


def test_artifact_feeds_perf_history(tmp_path):
    """The artifact round-trips through ``repro perf record``'s adapter."""
    from repro.telemetry import history

    artifact = _small_artifact()
    entries = history.entries_from_artifact(artifact, version="bench")
    names = {(entry["bench"], entry["backend"]) for entry in entries}
    assert names == {
        ("protocol.file_add", "columnar"),
        ("protocol.proof_round", "columnar"),
        ("protocol.file_add", "object"),
        ("protocol.proof_round", "object"),
    }
    target = tmp_path / "history.jsonl"
    history.append_entries(target, entries)
    assert len(history.load_history(target)) == len(entries)


def _small_artifact():
    """A miniature artifact for the adapter test (seconds, not minutes)."""
    return {
        "kind": "protocol_columnar_bench",
        "scale": "small",
        "providers": 200,
        "k": 3,
        "add_batch": ADD_BATCH,
        "columnar": run_engine("columnar", 200, 2_000),
        "object": run_engine("object", 200, 500),
    }


# ----------------------------------------------------------------------
# artifact writer (bench-smoke CI)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_protocol.json", help="artifact path")
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=bench_scale(),
        help="deployment shape (default honours $REPRO_BENCH_XL)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_SPEEDUP,
        help=f"fail below this columnar/object speedup (default {MIN_SPEEDUP})",
    )
    args = parser.parse_args(argv)

    artifact = _gated_speedups(args.scale)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    columnar, reference = artifact["columnar"], artifact["object"]
    print(
        f"columnar[{args.scale}]: add {columnar['add_files_per_s']:,.0f} files/s, "
        f"proof {columnar['proof_files_per_s']:,.0f} files/s, "
        f"rss {columnar['max_rss_mb']:.0f} MB | object slice "
        f"({reference['files']} files): add {reference['add_files_per_s']:,.0f}, "
        f"proof {reference['proof_files_per_s']:,.0f} | speedup "
        f"add {artifact['speedup']['file_add']:.1f}x, "
        f"proof {artifact['speedup']['proof_round']:.1f}x "
        f"(gate {args.min_speedup:.1f}x)"
    )
    if min(artifact["speedup"].values()) < args.min_speedup:
        print("FAIL: columnar speedup below the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
