"""Pinned kernel-benchmark shapes and gates, shared by every consumer.

One definition of the workloads and acceptance bars keeps the pytest
gates (``test_bench_refresh.py``, ``test_bench_adversary.py``) and the
CI artifact gate (``bench_kernels.py``) measuring the *same* thing --
retuning a shape or a bar here retunes all of them together.

Importable both under pytest (which puts ``benchmarks/`` on ``sys.path``)
and from ``bench_kernels.py`` run as a script.
"""

from __future__ import annotations

import gc
import time
from typing import Callable

import numpy as np

from repro.sim.adversary import GreedyCapacityAdversary
from repro.sim.placement import PlacementExperiment, PlacementResult
from repro.sim.workload import FileSizeDistribution

#: Refresh shape: big enough that per-refresh cost dominates setup,
#: small enough to finish a round in well under a second.
REFRESH_N_BACKUPS = 20_000
REFRESH_N_SECTORS = 200
REFRESH_MULTIPLIER = 10  # => 200_000 refreshes per measured round
REFRESH_DISTRIBUTION = FileSizeDistribution.EXPONENTIAL

#: Kernel-extraction acceptance bar: vectorized refresh must beat the
#: reference loop by at least this factor at the pinned shape.
MIN_REFRESH_SPEEDUP = 5.0

#: Greedy-adversary shape: 3000 files x 4 replicas over 600 sectors,
#: corrupting 40% of capacity -- the robustness scenario's i.i.d.
#: placement geometry at benchmark scale.
ADVERSARY_N_SECTORS = 600
ADVERSARY_N_FILES = 3_000
ADVERSARY_REPLICAS = 4
ADVERSARY_BUDGET = 0.4

#: Weighted-sampler shape: a capacity table at Table-III-ish scale with
#: draw batches interleaved with weight updates (the segment replays the
#: vectorized engine must survive), plus a resample-on-full place tail.
SAMPLER_N_SLOTS = 3_000
SAMPLER_DRAWS = 48_000
SAMPLER_SEGMENTS = 12
SAMPLER_PLACES = 2_000

#: Acceptance bar for the sampler kernel: vectorized batch draws must
#: beat the Fenwick oracle by at least this factor at the pinned shape.
MIN_SAMPLER_SPEEDUP = 2.0


def run_refresh(backend: str) -> PlacementResult:
    """One measured round of the pinned refresh workload."""
    return PlacementExperiment(seed=0, backend=backend).run_refresh(
        REFRESH_DISTRIBUTION,
        REFRESH_N_BACKUPS,
        REFRESH_N_SECTORS,
        refresh_multiplier=REFRESH_MULTIPLIER,
    )


def adversary_workload():
    """The pinned greedy-adversary inputs (capacities, placements, values)."""
    rng = np.random.default_rng(7)
    placements = [
        list(rng.integers(0, ADVERSARY_N_SECTORS, ADVERSARY_REPLICAS))
        for _ in range(ADVERSARY_N_FILES)
    ]
    values = [float(v) for v in rng.integers(1, 5, ADVERSARY_N_FILES)]
    capacities = [float(c) for c in rng.integers(1, 4, ADVERSARY_N_SECTORS)]
    return capacities, placements, values


def run_greedy(backend: str):
    """One full greedy selection at the pinned shape."""
    capacities, placements, values = adversary_workload()
    adversary = GreedyCapacityAdversary(seed=1, backend=backend)
    return adversary.choose_sectors(capacities, placements, values, ADVERSARY_BUDGET)


def sampler_workload():
    """The pinned ``batch_weighted_draw`` inputs (weights, ops, free)."""
    rng = np.random.default_rng(23)
    weights = rng.integers(1, 1 << 20, SAMPLER_N_SLOTS).astype(np.int64)
    ops = []
    per_segment = SAMPLER_DRAWS // SAMPLER_SEGMENTS
    for _ in range(SAMPLER_SEGMENTS):
        ops.append(("draw", per_segment))
        ops.append(
            ("set", int(rng.integers(0, SAMPLER_N_SLOTS)), int(rng.integers(0, 1 << 20)))
        )
    ops.extend(("place", int(size), 4) for size in rng.integers(1, 64, SAMPLER_PLACES))
    free = np.full(SAMPLER_N_SLOTS, 48, dtype=np.int64)
    return weights, ops, free


def run_sampler(backend: str) -> tuple:
    """One full batched-draw replay at the pinned shape.

    Returns hashable result fields so the artifact gate can assert
    cross-backend equality before timing anything.
    """
    from repro.kernels import get_backend, sampler_stream

    weights, ops, free = sampler_workload()
    result = get_backend(backend).batch_weighted_draw(
        sampler_stream(17, 0), weights, ops, free=free
    )
    return result.keys.tobytes(), result.attempts, result.collisions


def best_wall(run: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-N wall time with the GC parked, as pytest-benchmark does."""
    best = float("inf")
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best
