"""Benchmark: event-driven lifecycle simulation throughput.

The ``lifecycle_churn`` director schedules every upload, failure clock,
refresh race and retrieval arrival on :class:`repro.sim.engine.
SimulationEngine`; this gate pins the engine's event throughput at a
deployment shape busy enough to exercise cancellation (refresh races,
pre-empted departures) and both kernel batches:

* ``test_lifecycle_event_throughput[reference|vectorized]`` -- the
  pinned deployment per backend, reported as engine events/second;
* ``test_lifecycle_rows_identical_across_backends`` -- the identity
  gate: the pinned row must be bit-identical on both backends.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_lifecycle.py -q``.
"""

from __future__ import annotations

import pytest

from repro.sim.lifecycle import LifecycleConfig, LifecycleSimulation

#: A deployment busy enough to make engine overhead measurable: thousands
#: of retrieval events, dozens of failure/recovery cycles and refresh
#: races inside one run.
BENCH_CONFIG = dict(
    providers=24,
    regions=4,
    files=64,
    replicas=3,
    horizon_s=1200.0,
    mtbf_s=400.0,
    mttr_s=50.0,
    departures=2,
    retrieval_rate=4.0,
    flash_crowds=2,
    regional_failures=1,
    seed=29,
)

#: Floor on engine throughput at the pinned shape; real numbers are far
#: higher -- this only catches a pathological slowdown (e.g. an eager
#: O(n) cancellation sneaking back in).
MIN_EVENTS_PER_SECOND = 2_000


def run_lifecycle(backend: str):
    sim = LifecycleSimulation(LifecycleConfig(**BENCH_CONFIG, backend=backend))
    row = sim.run()
    return row


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_lifecycle_event_throughput(benchmark, backend, record):
    row = benchmark.pedantic(lambda: run_lifecycle(backend), rounds=3, iterations=1)
    assert row["events_processed"] > 2_000
    assert row["events_cancelled"] > 0  # the cancel races actually ran
    events_per_second = row["events_processed"] / benchmark.stats["min"]
    record(
        f"lifecycle events/s [{backend}]",
        f"{events_per_second:,.0f}",
        "n/a (engineering gate)",
    )
    assert events_per_second >= MIN_EVENTS_PER_SECOND


def test_lifecycle_rows_identical_across_backends(record):
    reference = run_lifecycle("reference")
    vectorized = run_lifecycle("vectorized")
    assert reference == vectorized, "lifecycle rows diverge across backends"
    record(
        "lifecycle cross-backend identity",
        f"{reference['events_processed']} events, row identical",
        "bit-identical (acceptance gate)",
    )
