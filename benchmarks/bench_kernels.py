"""Kernel benchmark artifact: reference vs vectorized, as JSON.

Times the three extracted hot loops -- Table III refresh churn, the
Section V-C greedy adversary, and ``RandomSector()`` batched weighted
draws -- on both :mod:`repro.kernels` backends at the pinned benchmark
shapes (defined once in :mod:`kernel_shapes`, shared with the pytest
gates), verifies the backends agree (identical ``PlacementResult`` /
identical chosen sector sets / identical drawn-key sequences), and
writes a machine-readable ``BENCH_kernels.json`` for the CI
`bench-smoke` job to upload.  Exits non-zero when the vectorized backend
is not faster than reference on any kernel, or when the refresh or
sampler speedup misses its acceptance bar.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py --out BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np  # noqa: E402

from kernel_shapes import (  # noqa: E402
    ADVERSARY_BUDGET,
    ADVERSARY_N_FILES,
    ADVERSARY_N_SECTORS,
    ADVERSARY_REPLICAS,
    MIN_REFRESH_SPEEDUP,
    MIN_SAMPLER_SPEEDUP,
    REFRESH_MULTIPLIER,
    REFRESH_N_BACKUPS,
    REFRESH_N_SECTORS,
    SAMPLER_DRAWS,
    SAMPLER_N_SLOTS,
    SAMPLER_PLACES,
    SAMPLER_SEGMENTS,
    best_wall,
    run_greedy,
    run_refresh,
    run_sampler,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernels.json", help="artifact path")
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N wall per backend (default 3)"
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="JSONL",
        help="perf-history file to append the walls to (default: "
        "$REPRO_PERF_HISTORY or runs/perf-history.jsonl; 'none' disables)",
    )
    args = parser.parse_args(argv)

    # Correctness first: the artifact is meaningless if the backends drift.
    assert run_refresh("reference") == run_refresh("vectorized"), (
        "refresh kernels disagree between backends"
    )
    assert run_greedy("reference") == run_greedy("vectorized"), (
        "greedy kernels disagree between backends"
    )
    assert run_sampler("reference") == run_sampler("vectorized"), (
        "batch_weighted_draw kernels disagree between backends"
    )

    results: Dict[str, Dict[str, float]] = {}
    for kernel, run in (
        ("refresh", run_refresh),
        ("greedy_adversary", run_greedy),
        ("batch_weighted_draw", run_sampler),
    ):
        walls = {
            backend: best_wall(lambda: run(backend), args.repeats)
            for backend in ("reference", "vectorized")
        }
        results[kernel] = {
            "reference_seconds": round(walls["reference"], 6),
            "vectorized_seconds": round(walls["vectorized"], 6),
            "speedup": round(walls["reference"] / walls["vectorized"], 2),
        }

    artifact = {
        "shapes": {
            "refresh": {
                "n_backups": REFRESH_N_BACKUPS,
                "n_sectors": REFRESH_N_SECTORS,
                "refresh_multiplier": REFRESH_MULTIPLIER,
            },
            "greedy_adversary": {
                "n_sectors": ADVERSARY_N_SECTORS,
                "n_files": ADVERSARY_N_FILES,
                "replicas": ADVERSARY_REPLICAS,
                "budget": ADVERSARY_BUDGET,
            },
            "batch_weighted_draw": {
                "n_slots": SAMPLER_N_SLOTS,
                "draws": SAMPLER_DRAWS,
                "weight_updates": SAMPLER_SEGMENTS,
                "places": SAMPLER_PLACES,
            },
        },
        "results": results,
        "acceptance": {
            "refresh_min_speedup": MIN_REFRESH_SPEEDUP,
            "greedy_min_speedup": 1.0,
            "sampler_min_speedup": MIN_SAMPLER_SPEEDUP,
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for kernel, row in results.items():
        print(
            f"{kernel}: reference {row['reference_seconds'] * 1000:.1f}ms, "
            f"vectorized {row['vectorized_seconds'] * 1000:.1f}ms "
            f"-> {row['speedup']}x"
        )
    print(f"artifact written to {args.out}")

    # Append the walls to the persistent perf history so `repro perf
    # report|check` can trend them across runs.  Best-effort: a read-only
    # checkout must not fail the bench.
    from repro.telemetry import history

    if args.history is None or args.history.strip().lower() != "none":
        target = args.history or history.default_history_path()
        try:
            entries = history.entries_from_artifact(artifact, source=args.out)
            history.append_entries(target, entries)
            print(f"perf history: {len(entries)} entries appended to {target}")
        except OSError as error:
            print(f"warning: perf history not recorded ({error})", file=sys.stderr)

    failed = []
    if results["refresh"]["speedup"] < MIN_REFRESH_SPEEDUP:
        failed.append(
            f"refresh speedup {results['refresh']['speedup']}x "
            f"< {MIN_REFRESH_SPEEDUP}x"
        )
    if results["greedy_adversary"]["speedup"] <= 1.0:
        failed.append(
            "greedy_adversary: vectorized is not faster than reference "
            f"({results['greedy_adversary']['speedup']}x)"
        )
    if results["batch_weighted_draw"]["speedup"] < MIN_SAMPLER_SPEEDUP:
        failed.append(
            f"batch_weighted_draw speedup "
            f"{results['batch_weighted_draw']['speedup']}x "
            f"< {MIN_SAMPLER_SPEEDUP}x"
        )
    if failed:
        print("FAIL: " + "; ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
