"""Benchmark E1/E2: Table III -- maximum capacity usage of sectors.

Reproduces both settings (reallocate-100-times and refresh-100*Ncp-times)
for all five file-backup size distributions on a scaled grid that keeps the
paper's Ncp/Ns ratios.  The paper's claim being checked: the maximum
capacity usage never exceeds ~0.64, so capacity-proportional random
placement almost never collides.
"""

from __future__ import annotations

import pytest

from repro.experiments import table3
from repro.sim.placement import PlacementExperiment
from repro.sim.workload import FileSizeDistribution

# Scaled grid: same Ncp/Ns ratios (5000 and 1000) as the paper's rows.
BENCH_GRID = [(10**5, 20), (10**5, 100)]
BENCH_ROUNDS = 30
BENCH_REFRESH_MULTIPLIER = 10


@pytest.mark.parametrize("distribution", list(FileSizeDistribution.paper_order()))
def test_table3_reallocate_setting(benchmark, record, distribution):
    """Table III (top): reallocate all file backups, max usage per cell."""

    def run():
        experiment = PlacementExperiment(seed=0)
        return [
            experiment.run_reallocate(distribution, ncp, ns, rounds=BENCH_ROUNDS)
            for ncp, ns in BENCH_GRID
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = max(result.max_usage for result in results)
    assert worst < table3.PAPER_MAX_USAGE
    record(
        f"Table III reallocate {distribution.paper_label} (max usage)",
        round(worst, 3),
        "< 0.64 (paper: 0.52-0.61)",
    )


@pytest.mark.parametrize("distribution", list(FileSizeDistribution.paper_order()))
def test_table3_refresh_setting(benchmark, record, distribution):
    """Table III (bottom): refresh random backups, max usage per cell."""

    def run():
        experiment = PlacementExperiment(seed=1)
        return [
            experiment.run_refresh(
                distribution, ncp, ns, refresh_multiplier=BENCH_REFRESH_MULTIPLIER
            )
            for ncp, ns in BENCH_GRID
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = max(result.max_usage for result in results)
    assert worst < table3.PAPER_MAX_USAGE
    record(
        f"Table III refresh {distribution.paper_label} (max usage)",
        round(worst, 3),
        "< 0.64 (paper: 0.53-0.64)",
    )


def test_table3_usage_grows_with_ns_at_fixed_ratio(benchmark, record):
    """The paper's grid shows usage increasing mildly with Ns at a fixed
    Ncp/Ns ratio; check the trend on the scaled grid."""

    def run():
        experiment = PlacementExperiment(seed=2)
        small = experiment.run_reallocate(
            FileSizeDistribution.EXPONENTIAL, 10**5, 20, rounds=BENCH_ROUNDS
        )
        large = experiment.run_reallocate(
            FileSizeDistribution.EXPONENTIAL, 10**5, 100, rounds=BENCH_ROUNDS
        )
        return small, large

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    assert large.max_usage > small.max_usage
    record(
        "Table III trend: usage(Ns=100) > usage(Ns=20) at Ncp=1e5",
        f"{small.max_usage:.3f} -> {large.max_usage:.3f}",
        "0.536 -> 0.584 (distribution [3])",
    )
