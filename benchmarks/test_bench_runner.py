"""Benchmark: runner orchestration -- serial vs. multiprocess wall-clock.

Times the same robustness Monte-Carlo batch (a fixed grid of Theorem 3
trials) through the :mod:`repro.runner` executor serially and with four
worker processes.  Trials are embarrassingly parallel, so on a machine
with >= 4 cores the parallel run must be at least 1.5x faster; on smaller
machines the speedup assertion is skipped but the determinism guarantee
(byte-identical per-trial rows regardless of worker count) is still
verified.
"""

from __future__ import annotations

import os

import pytest

from repro.runner.executor import run_scenario
from repro.runner.registry import load_builtin_scenarios

#: Fixed robustness grid: 8 Monte-Carlo corruption trials at lambda=0.5.
BATCH = {
    "lambdas": (0.5,),
    "n_sectors": 1500,
    "n_files": 1500,
    "k": 8,
    "trials": 4,  # x2 adversaries = 8 independent trials
}

#: Smaller grid for the determinism check that runs on any machine.
SMALL_BATCH = {
    "lambdas": (0.5,),
    "n_sectors": 400,
    "n_files": 400,
    "k": 6,
    "trials": 2,
}


def test_parallel_rows_identical_to_serial(benchmark, record):
    """Workers change wall-clock only: per-trial rows stay byte-identical."""
    load_builtin_scenarios()
    serial = run_scenario("robustness", SMALL_BATCH, workers=1, seed=7)

    def run():
        return run_scenario("robustness", SMALL_BATCH, workers=2, seed=7)

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial.trial_rows_equal(parallel)
    assert serial.rows == parallel.rows
    record(
        "Runner determinism (robustness, seed=7): serial vs 2-worker rows",
        "identical",
        "identical by construction (root-seed-derived trial seeds)",
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs at least 4 CPU cores",
)
def test_parallel_speedup_with_4_workers(benchmark, record):
    """Four workers complete the fixed robustness batch >= 1.5x faster."""
    load_builtin_scenarios()
    serial = run_scenario("robustness", BATCH, workers=1, seed=7)

    def run():
        return run_scenario("robustness", BATCH, workers=4, seed=7)

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial.trial_rows_equal(parallel)
    speedup = serial.duration_seconds / max(parallel.duration_seconds, 1e-9)
    record(
        "Runner speedup (8 robustness trials, 4 workers)",
        f"{speedup:.2f}x",
        ">= 1.5x on a >=4-core machine",
    )
    assert speedup >= 1.5, (
        f"expected >=1.5x speedup with 4 workers, got {speedup:.2f}x "
        f"(serial {serial.duration_seconds:.2f}s, "
        f"parallel {parallel.duration_seconds:.2f}s)"
    )
