"""Benchmark E3: Table IV -- comparison of DSN protocols.

Runs the shared workload and the same 30%-of-capacity corruption against
FileInsurer, Filecoin, Arweave, Storj and Sia, and checks that every Yes/No
property entry of the paper's Table IV is reproduced, with the empirical
loss/compensation numbers recorded alongside.
"""

from __future__ import annotations

import pytest

from repro.baselines.comparison import ComparisonHarness
from repro.experiments.table4 import paper_expectations


def test_table4_protocol_comparison(benchmark, record):
    """Full five-protocol comparison under random and targeted corruption."""

    def run():
        harness = ComparisonHarness(
            n_sectors=200, n_files=400, corruption_fraction=0.3, seed=0
        )
        return harness.run()

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = paper_expectations()
    for result in results:
        paper_row = expected[result.protocol]
        assert result.capacity_scalability == paper_row["capacity_scalability"]
        assert result.prevents_sybil_attacks == paper_row["prevents_sybil_attacks"]
        assert result.provable_robustness == paper_row["provable_robustness"]
        assert result.compensation_for_loss == paper_row["compensation_for_loss"]
        record(
            f"Table IV {result.protocol} "
            "(scal/sybil/robust/comp, targeted loss, comp ratio)",
            (
                f"{'Y' if result.capacity_scalability else 'N'}"
                f"{'Y' if result.prevents_sybil_attacks else 'N'}"
                f"{'Y' if result.provable_robustness else 'N'}"
                f"{'Y' if result.compensation_for_loss else 'N'}"
                f" loss={result.loss_ratio_targeted:.3f}"
                f" comp={result.compensation_ratio:.2f}"
            ),
            (
                f"{'Y' if paper_row['capacity_scalability'] else 'N'}"
                f"{'Y' if paper_row['prevents_sybil_attacks'] else 'N'}"
                f"{'Y' if paper_row['provable_robustness'] else 'N'}"
                f"{'Y' if paper_row['compensation_for_loss'] else 'N'}"
            ),
        )


def test_table4_fileinsurer_wins_under_targeted_attack(benchmark, record):
    """FileInsurer's randomised placement loses the least value under the
    targeted adversary -- the quantitative story behind its 'Yes' entries."""

    def run():
        harness = ComparisonHarness(
            n_sectors=150, n_files=300, corruption_fraction=0.3, seed=1
        )
        return {r.protocol: r for r in harness.run()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    fileinsurer = results["FileInsurer"]
    for name, result in results.items():
        if name == "FileInsurer":
            continue
        assert fileinsurer.loss_ratio_targeted <= result.loss_ratio_targeted + 1e-9
    record(
        "Table IV targeted-loss ranking (FileInsurer lowest)",
        f"FileInsurer={fileinsurer.loss_ratio_targeted:.3f}",
        "provable robustness only for FileInsurer",
    )
