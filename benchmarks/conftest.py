"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts (see
the experiment index in ``docs/scenarios.md``) at a scale that completes
in seconds.
Benchmarks run the experiment exactly once per measurement round
(``pedantic`` mode) because the quantities of interest are the experiment
outputs themselves, not micro-timings; the printed summary after the run
shows the reproduced values next to the paper's.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

#: Collected (artefact, reproduced, paper) rows printed at the end of a run.
_REPRODUCTION_ROWS: List[Dict[str, object]] = []


def record_reproduction(artefact: str, reproduced: object, paper: object) -> None:
    """Register a reproduced-vs-paper comparison for the final summary."""
    _REPRODUCTION_ROWS.append(
        {"artefact": artefact, "reproduced": reproduced, "paper": paper}
    )


@pytest.fixture
def record():
    """Fixture exposing :func:`record_reproduction` to benchmarks."""
    return record_reproduction


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the reproduced-vs-paper table after the benchmark run."""
    if not _REPRODUCTION_ROWS:
        return
    terminalreporter.write_sep("=", "paper reproduction summary")
    width = max(len(str(row["artefact"])) for row in _REPRODUCTION_ROWS) + 2
    terminalreporter.write_line(
        f"{'artefact'.ljust(width)}{'reproduced'.ljust(28)}paper"
    )
    for row in _REPRODUCTION_ROWS:
        terminalreporter.write_line(
            f"{str(row['artefact']).ljust(width)}"
            f"{str(row['reproduced']).ljust(28)}{row['paper']}"
        )
